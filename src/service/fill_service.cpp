#include "service/fill_service.hpp"

#include <algorithm>
#include <cstdio>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "gds/gds_writer.hpp"
#include "gds/oasis.hpp"
#include "layout/gds_compact.hpp"
#include "service/fingerprint.hpp"
#include "service/layout_io.hpp"

namespace ofl::service {

namespace {
using Clock = std::chrono::steady_clock;

double secondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

FillService::FillService(ServiceOptions options)
    : options_(options), cache_(options.cacheBytes) {
  const int jobs = std::max(1, options_.maxConcurrentJobs);
  threadsPerJob_ =
      options_.threadsPerJob > 0
          ? ThreadPool::cappedThreads(options_.threadsPerJob, 0)
          : ThreadPool::cappedThreads(
                0, std::max(1, ThreadPool::hardwareThreads() / jobs));
  scheduler_ = std::make_unique<Scheduler>(jobs, options_.queueCapacity);
}

FillService::~FillService() {
  // Members are destroyed in reverse declaration order: the scheduler goes
  // first and drains every admitted job while jobs_ and cache_ are alive.
}

std::uint64_t FillService::submit(JobSpec spec) {
  auto job = std::make_unique<Job>();
  job->spec = std::move(spec);
  if (job->spec.name.empty()) job->spec.name = job->spec.inputPath;
  const double timeout = job->spec.timeoutSeconds > 0
                             ? job->spec.timeoutSeconds
                             : options_.defaultTimeoutSeconds;
  job->submitTime = Clock::now();
  job->token.armDeadline(timeout);

  Job* raw = nullptr;
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!anySubmitted_) {
      anySubmitted_ = true;
      firstSubmit_ = job->submitTime;
    }
    id = jobs_.size();
    jobs_.push_back(std::move(job));
    raw = jobs_.back().get();
  }
  // May block on admission; outside the service mutex so running jobs can
  // publish results meanwhile.
  scheduler_->submit([this, raw] { execute(*raw); });
  return id;
}

JobResult FillService::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return id < jobs_.size() && jobs_[id]->done; });
  return jobs_[id]->result;
}

bool FillService::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= jobs_.size() || jobs_[id]->done) return false;
  jobs_[id]->token.cancel();
  return true;
}

std::vector<JobResult> FillService::waitAll() {
  std::size_t count = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    count = jobs_.size();
  }
  std::vector<JobResult> results;
  results.reserve(count);
  for (std::size_t id = 0; id < count; ++id) {
    results.push_back(wait(id));
  }
  return results;
}

void FillService::execute(Job& job) {
  const Clock::time_point picked = Clock::now();
  Timer runTimer;
  JobResult r;
  try {
    job.token.throwIfExpired();  // queued past the deadline / pre-cancelled
    r = runJob(job);
  } catch (const CancelledError&) {
    r = JobResult{};
    if (job.token.cancelled.load(std::memory_order_relaxed)) {
      r.status = JobStatus::kCancelled;
      r.error = "cancelled";
    } else {
      r.status = JobStatus::kTimedOut;
      r.error = "deadline exceeded";
    }
  } catch (const std::exception& e) {
    r = JobResult{};
    r.status = JobStatus::kFailed;
    r.error = e.what();
  }
  r.queueSeconds = secondsBetween(job.submitTime, picked);
  r.runSeconds = runTimer.elapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.result = std::move(r);
    job.done = true;
    lastFinish_ = Clock::now();
  }
  done_.notify_all();
}

JobResult FillService::runJob(Job& job) const {
  const JobSpec& spec = job.spec;
  JobResult r;

  layout::Layout chip({}, 0);
  if (spec.layout != nullptr) {
    chip = *spec.layout;
  } else {
    std::string error;
    if (!loadFlatLayout(spec.inputPath, spec.die, &chip, &error)) {
      r.status = JobStatus::kFailed;
      r.error = error;
      return r;
    }
  }

  fill::FillEngineOptions engine = spec.engine;
  engine.numThreads = threadsPerJob_;
  engine.cancel = &job.token;
  r.cacheKey = cacheKey(chip, engine);  // key ignores numThreads/cancel
  job.token.throwIfExpired();

  const auto entry = cache_.find(r.cacheKey);
  if (entry != nullptr && entry->fillsPerLayer.size() ==
                              static_cast<std::size_t>(chip.numLayers())) {
    entry->applyTo(chip);
    r.report = entry->report;
    r.cacheHit = true;
  } else {
    r.report = fill::FillEngine(engine).run(chip);  // may throw CancelledError
    cache_.insert(r.cacheKey, CachedFill::capture(chip, r.report));
  }
  r.fillCount = chip.fillCount();

  if (!spec.outputPath.empty()) {
    const gds::Library lib =
        spec.compact ? layout::toCompactGds(chip) : chip.toGds();
    r.outputBytes = spec.format == OutputFormat::kOasis
                        ? gds::OasisWriter::writeFile(lib, spec.outputPath)
                        : gds::Writer::writeFile(lib, spec.outputPath);
    if (r.outputBytes < 0) {
      r.status = JobStatus::kFailed;
      r.error = "cannot write " + spec.outputPath;
      return r;
    }
  }
  if (spec.keepLayout) {
    r.layout = std::make_shared<layout::Layout>(std::move(chip));
  }
  r.status = JobStatus::kSucceeded;
  return r;
}

ServiceStats FillService::stats() const {
  ServiceStats s;
  s.profile = prof::Registry::instance().snapshot();
  s.cache = cache_.counters();
  const std::uint64_t probes = s.cache.hits + s.cache.misses;
  s.cacheHitRate =
      probes > 0 ? static_cast<double>(s.cache.hits) / static_cast<double>(probes)
                 : 0.0;

  std::lock_guard<std::mutex> lock(mutex_);
  s.submitted = jobs_.size();
  for (const auto& job : jobs_) {
    if (!job->done) continue;
    const JobResult& r = job->result;
    ++s.completed;
    switch (r.status) {
      case JobStatus::kSucceeded: ++s.succeeded; break;
      case JobStatus::kFailed: ++s.failed; break;
      case JobStatus::kTimedOut: ++s.timedOut; break;
      case JobStatus::kCancelled: ++s.cancelled; break;
    }
    s.queueSecondsTotal += r.queueSeconds;
    s.queueSecondsMax = std::max(s.queueSecondsMax, r.queueSeconds);
    if (r.status == JobStatus::kSucceeded) {
      if (r.cacheHit) {
        ++s.jobCacheHits;
      } else {
        s.planningSeconds += r.report.planningSeconds;
        s.candidateSeconds += r.report.candidateSeconds;
        s.sizingSeconds += r.report.sizingSeconds;
        s.engineSeconds += r.report.totalSeconds;
      }
    }
  }
  if (s.completed > 0) {
    s.queueSecondsMean =
        s.queueSecondsTotal / static_cast<double>(s.completed);
    if (anySubmitted_) {
      s.wallSeconds = secondsBetween(firstSubmit_, lastFinish_);
      if (s.wallSeconds > 0) {
        s.jobsPerSecond = static_cast<double>(s.completed) / s.wallSeconds;
      }
    }
  }
  return s;
}

std::string toJson(const ServiceStats& s) {
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"jobs\": {\"submitted\": %llu, \"completed\": %llu, "
      "\"succeeded\": %llu, \"failed\": %llu, \"timed_out\": %llu, "
      "\"cancelled\": %llu},\n"
      "  \"throughput\": {\"wall_seconds\": %.4f, \"jobs_per_second\": %.3f},\n"
      "  \"queue_seconds\": {\"total\": %.4f, \"mean\": %.4f, \"max\": %.4f},\n"
      "  \"engine_seconds\": {\"planning\": %.4f, \"candidates\": %.4f, "
      "\"sizing\": %.4f, \"total\": %.4f},\n"
      "  \"cache\": {\"job_hits\": %llu, \"hits\": %llu, \"misses\": %llu, "
      "\"hit_rate\": %.4f, \"insertions\": %llu, \"evictions\": %llu, "
      "\"oversized\": %llu, \"entries\": %zu, \"bytes_used\": %zu, "
      "\"byte_budget\": %zu}\n"
      "}",
      static_cast<unsigned long long>(s.submitted),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.succeeded),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.timedOut),
      static_cast<unsigned long long>(s.cancelled), s.wallSeconds,
      s.jobsPerSecond, s.queueSecondsTotal, s.queueSecondsMean,
      s.queueSecondsMax, s.planningSeconds, s.candidateSeconds,
      s.sizingSeconds, s.engineSeconds,
      static_cast<unsigned long long>(s.jobCacheHits),
      static_cast<unsigned long long>(s.cache.hits),
      static_cast<unsigned long long>(s.cache.misses), s.cacheHitRate,
      static_cast<unsigned long long>(s.cache.insertions),
      static_cast<unsigned long long>(s.cache.evictions),
      static_cast<unsigned long long>(s.cache.oversized), s.cache.entries,
      s.cache.bytesUsed, s.cache.byteBudget);
  std::string out(buf);
  if (!s.profile.empty()) {
    // Splice before the closing brace: ...\n} -> ...,\n  "profile": {...}\n}
    out.insert(out.size() - 2, ",\n  \"profile\": " + s.profile.json());
  }
  return out;
}

}  // namespace ofl::service
