#include "service/fill_service.hpp"

#include <algorithm>
#include <cstdio>

#include "common/logging.hpp"
#include "common/memory_usage.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "fill/sharded_engine.hpp"
#include "gds/gds_writer.hpp"
#include "gds/oasis.hpp"
#include "layout/gds_compact.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/fingerprint.hpp"
#include "service/layout_io.hpp"

namespace ofl::service {

namespace {
using Clock = std::chrono::steady_clock;

double secondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

FillService::FillService(ServiceOptions options)
    : options_(options), cache_(options.cacheBytes, options.resultStore) {
  const int jobs = std::max(1, options_.maxConcurrentJobs);
  threadsPerJob_ =
      options_.threadsPerJob > 0
          ? ThreadPool::cappedThreads(options_.threadsPerJob, 0)
          : ThreadPool::cappedThreads(
                0, std::max(1, ThreadPool::hardwareThreads() / jobs));
  scheduler_ = std::make_unique<Scheduler>(jobs, options_.queueCapacity);
}

FillService::~FillService() {
  // Members are destroyed in reverse declaration order: the scheduler goes
  // first and drains every admitted job while jobs_ and cache_ are alive.
}

std::uint64_t FillService::submit(JobSpec spec) {
  auto job = std::make_unique<Job>();
  job->spec = std::move(spec);
  if (job->spec.name.empty()) job->spec.name = job->spec.inputPath;
  const double timeout = job->spec.timeoutSeconds > 0
                             ? job->spec.timeoutSeconds
                             : options_.defaultTimeoutSeconds;
  job->submitTime = Clock::now();
  job->token.armDeadline(timeout);

  Job* raw = nullptr;
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!anySubmitted_) {
      anySubmitted_ = true;
      firstSubmit_ = job->submitTime;
    }
    id = jobs_.size();
    job->id = id;
    jobs_.push_back(std::move(job));
    raw = jobs_.back().get();
  }
  if (obs::metricsEnabled()) {
    obs::MetricsRegistry::instance().counter("service.jobs_submitted").add();
  }
  // May block on admission; outside the service mutex so running jobs can
  // publish results meanwhile.
  scheduler_->submit([this, raw] { execute(*raw); });
  return id;
}

JobResult FillService::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return id < jobs_.size() && jobs_[id]->done; });
  return jobs_[id]->result;
}

bool FillService::waitFor(std::uint64_t id, double seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  return done_.wait_for(
      lock, std::chrono::duration<double>(seconds > 0 ? seconds : 0.0),
      [&] { return id < jobs_.size() && jobs_[id]->done; });
}

bool FillService::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= jobs_.size() || jobs_[id]->done) return false;
  jobs_[id]->token.cancel();
  return true;
}

std::size_t FillService::cancelAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& job : jobs_) {
    if (!job->done) {
      job->token.cancel();
      ++n;
    }
  }
  return n;
}

std::vector<JobResult> FillService::waitAll() {
  std::size_t count = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    count = jobs_.size();
  }
  std::vector<JobResult> results;
  results.reserve(count);
  for (std::size_t id = 0; id < count; ++id) {
    results.push_back(wait(id));
  }
  return results;
}

void FillService::execute(Job& job) {
  const Clock::time_point picked = Clock::now();
  const double jid = static_cast<double>(job.id);
  // Queue wait measured service-side (submission -> worker pickup); the
  // scheduler's sched.queue_wait covers admission -> pickup only.
  if (obs::Tracer::enabled()) {
    obs::Tracer& tracer = obs::Tracer::instance();
    const std::uint64_t submitNs = tracer.toEpochNs(job.submitTime);
    const std::uint64_t pickedNs = tracer.toEpochNs(picked);
    obs::completeSpan("job.queue_wait", "job", submitNs,
                      pickedNs > submitNs ? pickedNs - submitNs : 0,
                      {{"job", jid}});
  }
  ScopedLogContext logCtx("job", static_cast<long long>(job.id));
  Timer runTimer;
  JobResult r;
  {
    obs::ScopedSpan span("job.run", "job", {{"job", jid}});
    try {
      job.token.throwIfExpired();  // queued past the deadline / pre-cancelled
      r = runJob(job);
    } catch (const CancelledError&) {
      r = JobResult{};
      if (job.token.cancelled.load(std::memory_order_relaxed)) {
        r.status = JobStatus::kCancelled;
        r.error = "cancelled";
      } else {
        r.status = JobStatus::kTimedOut;
        r.error = "deadline exceeded";
      }
    } catch (const std::exception& e) {
      r = JobResult{};
      r.status = JobStatus::kFailed;
      r.error = e.what();
    }
  }
  r.queueSeconds = secondsBetween(job.submitTime, picked);
  r.runSeconds = runTimer.elapsedSeconds();
  r.peakRssMiB = peakMemoryMiB();
  if (obs::metricsEnabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
    reg.counter("service.jobs_completed").add();
    if (r.status != JobStatus::kSucceeded) {
      reg.counter("service.jobs_failed").add();
    }
    reg.histogram("job.queue_seconds").observe(r.queueSeconds);
    reg.histogram("job.run_seconds").observe(r.runSeconds);
    reg.gauge("process.peak_rss_mib").set(r.peakRssMiB);
  }
  logFields(LogLevel::kDebug, "job.done",
            {{"status", toString(r.status)},
             {"fills", std::to_string(r.fillCount)},
             {"cache_hit", r.cacheHit ? "1" : "0"}});
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job.result = std::move(r);
    job.done = true;
    lastFinish_ = Clock::now();
  }
  done_.notify_all();
}

JobResult FillService::runJob(Job& job) const {
  const JobSpec& spec = job.spec;
  JobResult r;

  if (spec.stream) {
    auto fail = [&r](const std::string& message) {
      r.status = JobStatus::kFailed;
      r.error = message;
      return r;
    };
    if (spec.kind == JobKind::kEco) {
      return fail("ECO (runIncremental) is not supported with --stream");
    }
    if (spec.compact) return fail("--compact is not supported with --stream");
    if (spec.format == OutputFormat::kOasis) {
      return fail("--format oasis is not supported with --stream");
    }
    if (spec.layout != nullptr || spec.keepLayout) {
      return fail("streamed jobs take file input and output only");
    }
    if (spec.inputPath.empty() || spec.outputPath.empty()) {
      return fail("streamed job requires input and output paths");
    }
    fill::ShardedOptions sharded;
    sharded.engine = spec.engine;
    sharded.engine.numThreads = threadsPerJob_;
    sharded.engine.cancel = &job.token;
    sharded.engine.jobId = static_cast<std::int64_t>(job.id);
    sharded.memBudgetMiB = spec.memBudgetMiB;
    fill::ShardedReport shardedReport;
    std::string error;
    if (!fill::ShardedEngine(sharded).runFile(spec.inputPath, spec.outputPath,
                                              spec.die, &shardedReport,
                                              &error)) {
      return fail(error);
    }
    r.report = shardedReport.fill;
    r.fillCount = shardedReport.fill.fillCount;
    r.outputBytes = shardedReport.outputBytes;
    r.status = JobStatus::kSucceeded;
    return r;
  }

  layout::Layout chip({}, 0);
  if (spec.layout != nullptr) {
    chip = *spec.layout;
  } else {
    std::string error;
    if (!loadFlatLayout(spec.inputPath, spec.die, &chip, &error)) {
      r.status = JobStatus::kFailed;
      r.error = error;
      return r;
    }
  }

  fill::FillEngineOptions engine = spec.engine;
  engine.numThreads = threadsPerJob_;
  engine.cancel = &job.token;
  engine.jobId = static_cast<std::int64_t>(job.id);  // telemetry only
  const bool eco = spec.kind == JobKind::kEco;
  if (eco && spec.ecoChanged.empty()) {
    r.status = JobStatus::kFailed;
    r.error = "eco job without a changed region";
    return r;
  }
  // ECO keys cover the input fills and the changed rect on top of the
  // wires+options fingerprint: an incremental result depends on all three.
  r.cacheKey = eco ? ecoCacheKey(chip, engine, spec.ecoChanged)
                   : cacheKey(chip, engine);  // key ignores numThreads/cancel
  job.token.throwIfExpired();

  const auto entry = cache_.find(r.cacheKey);
  if (entry != nullptr && entry->fillsPerLayer.size() ==
                              static_cast<std::size_t>(chip.numLayers())) {
    entry->applyTo(chip);
    r.report = entry->report;
    r.cacheHit = true;
  } else if (eco) {
    r.report = fill::FillEngine(engine).runIncremental(chip, spec.ecoChanged);
    cache_.insert(r.cacheKey, CachedFill::capture(chip, r.report));
  } else {
    r.report = fill::FillEngine(engine).run(chip);  // may throw CancelledError
    cache_.insert(r.cacheKey, CachedFill::capture(chip, r.report));
  }
  r.fillCount = chip.fillCount();

  if (!spec.outputPath.empty()) {
    const gds::Library lib =
        spec.compact ? layout::toCompactGds(chip) : chip.toGds();
    r.outputBytes = spec.format == OutputFormat::kOasis
                        ? gds::OasisWriter::writeFile(lib, spec.outputPath)
                        : gds::Writer::writeFile(lib, spec.outputPath);
    if (r.outputBytes < 0) {
      r.status = JobStatus::kFailed;
      r.error = "cannot write " + spec.outputPath;
      return r;
    }
  }
  if (spec.keepLayout) {
    r.layout = std::make_shared<layout::Layout>(std::move(chip));
  }
  r.status = JobStatus::kSucceeded;
  return r;
}

ServiceStats FillService::stats() const {
  ServiceStats s;
  s.profile = prof::Registry::instance().snapshot();
  s.cache = cache_.counters();
  const std::uint64_t probes = s.cache.hits + s.cache.misses;
  s.cacheHitRate =
      probes > 0 ? static_cast<double>(s.cache.hits) / static_cast<double>(probes)
                 : 0.0;

  std::lock_guard<std::mutex> lock(mutex_);
  s.submitted = jobs_.size();
  for (const auto& job : jobs_) {
    if (!job->done) continue;
    const JobResult& r = job->result;
    ++s.completed;
    switch (r.status) {
      case JobStatus::kSucceeded: ++s.succeeded; break;
      case JobStatus::kFailed: ++s.failed; break;
      case JobStatus::kTimedOut: ++s.timedOut; break;
      case JobStatus::kCancelled: ++s.cancelled; break;
    }
    s.queueSecondsTotal += r.queueSeconds;
    s.queueSecondsMax = std::max(s.queueSecondsMax, r.queueSeconds);
    s.peakRssMiB = std::max(s.peakRssMiB, r.peakRssMiB);
    if (r.status == JobStatus::kSucceeded) {
      if (r.cacheHit) {
        ++s.jobCacheHits;
      } else {
        s.planningSeconds += r.report.planningSeconds;
        s.candidateSeconds += r.report.candidateSeconds;
        s.sizingSeconds += r.report.sizingSeconds;
        s.engineSeconds += r.report.totalSeconds;
      }
    }
  }
  if (s.completed > 0) {
    s.queueSecondsMean =
        s.queueSecondsTotal / static_cast<double>(s.completed);
    if (anySubmitted_) {
      s.wallSeconds = secondsBetween(firstSubmit_, lastFinish_);
      if (s.wallSeconds > 0) {
        s.jobsPerSecond = static_cast<double>(s.completed) / s.wallSeconds;
      }
    }
  }
  return s;
}

std::string toJson(const ServiceStats& s) {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"jobs\": {\"submitted\": %llu, \"completed\": %llu, "
      "\"succeeded\": %llu, \"failed\": %llu, \"timed_out\": %llu, "
      "\"cancelled\": %llu},\n"
      "  \"throughput\": {\"wall_seconds\": %.4f, \"jobs_per_second\": %.3f},\n"
      "  \"peak_rss_mib\": %.1f,\n"
      "  \"queue_seconds\": {\"total\": %.4f, \"mean\": %.4f, \"max\": %.4f},\n"
      "  \"engine_seconds\": {\"planning\": %.4f, \"candidates\": %.4f, "
      "\"sizing\": %.4f, \"total\": %.4f},\n"
      "  \"cache\": {\"job_hits\": %llu, \"hits\": %llu, \"misses\": %llu, "
      "\"hit_rate\": %.4f, \"insertions\": %llu, \"evictions\": %llu, "
      "\"oversized\": %llu, \"persistent_hits\": %llu, "
      "\"persistent_misses\": %llu, \"entries\": %zu, \"bytes_used\": %zu, "
      "\"byte_budget\": %zu}\n"
      "}",
      static_cast<unsigned long long>(s.submitted),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.succeeded),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.timedOut),
      static_cast<unsigned long long>(s.cancelled), s.wallSeconds,
      s.jobsPerSecond, s.peakRssMiB, s.queueSecondsTotal, s.queueSecondsMean,
      s.queueSecondsMax, s.planningSeconds, s.candidateSeconds,
      s.sizingSeconds, s.engineSeconds,
      static_cast<unsigned long long>(s.jobCacheHits),
      static_cast<unsigned long long>(s.cache.hits),
      static_cast<unsigned long long>(s.cache.misses), s.cacheHitRate,
      static_cast<unsigned long long>(s.cache.insertions),
      static_cast<unsigned long long>(s.cache.evictions),
      static_cast<unsigned long long>(s.cache.oversized),
      static_cast<unsigned long long>(s.cache.persistentHits),
      static_cast<unsigned long long>(s.cache.persistentMisses),
      s.cache.entries, s.cache.bytesUsed, s.cache.byteBudget);
  std::string out(buf);
  if (!s.profile.empty()) {
    // Splice before the closing brace: ...\n} -> ...,\n  "profile": {...}\n}
    out.insert(out.size() - 2, ",\n  \"profile\": " + s.profile.json());
  }
  return out;
}

void exportToMetrics(const ServiceStats& s) {
  if (!obs::metricsEnabled()) return;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  reg.gauge("service.submitted").set(static_cast<double>(s.submitted));
  reg.gauge("service.completed").set(static_cast<double>(s.completed));
  reg.gauge("service.succeeded").set(static_cast<double>(s.succeeded));
  reg.gauge("service.failed").set(static_cast<double>(s.failed));
  reg.gauge("service.timed_out").set(static_cast<double>(s.timedOut));
  reg.gauge("service.cancelled").set(static_cast<double>(s.cancelled));
  reg.gauge("service.wall_seconds").set(s.wallSeconds);
  reg.gauge("service.jobs_per_second").set(s.jobsPerSecond);
  reg.gauge("service.queue_seconds_mean").set(s.queueSecondsMean);
  reg.gauge("service.queue_seconds_max").set(s.queueSecondsMax);
  reg.gauge("service.engine_seconds").set(s.engineSeconds);
  reg.gauge("service.peak_rss_mib").set(s.peakRssMiB);
  reg.gauge("service.job_cache_hits")
      .set(static_cast<double>(s.jobCacheHits));
  reg.gauge("service.cache_hit_rate").set(s.cacheHitRate);
  // The cache counters below also accumulate live (service/result_cache);
  // the gauges give the authoritative end-of-batch view even when metrics
  // were toggled mid-run.
  reg.gauge("cache.bytes_used").set(static_cast<double>(s.cache.bytesUsed));
  reg.gauge("cache.entries").set(static_cast<double>(s.cache.entries));
}

}  // namespace ofl::service
