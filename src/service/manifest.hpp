// Batch manifest parsing: one fill job per line.
//
//   # comment
//   wires_a.gds --out a_filled.gds --window 1200 --lambda 1.2
//   wires_b.gds --backend ssp --compact
//   wires_a.gds                       # repeated inputs hit the result cache
//
// The first whitespace-separated token is the input layout path; the rest
// are per-job option overrides with the same names and defaults as
// `openfill fill` (so a manifest line and a fill invocation with the same
// options produce byte-identical output). Values may be given as
// "--key value" or "--key=value"; paths with spaces are not supported.
//
// Recognized options: --out NAME (output file name, resolved against the
// batch --out-dir), --window --iterations --min-width --min-spacing
// --min-area --max-fill (integers), --lambda --gamma --eta --timeout-s
// (reals), --backend ns|ssp|lp, --format gds|oasis, --die xl,yl,xh,yh,
// --compact (flag).
//
// Parsing is strict: malformed values, unknown options and missing inputs
// are reported per line with line numbers, and nothing runs unless the
// whole manifest parses.
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "service/job.hpp"

namespace ofl::service {

/// The engine options a manifest line starts from — identical to the
/// fallbacks of `openfill fill` (cli/commands.cpp builds its defaults from
/// this too), so a line with no overrides matches a bare fill invocation
/// byte for byte.
fill::FillEngineOptions defaultEngineOptions();

struct ManifestError {
  int line = 0;  // 1-based
  std::string message;
};

struct ManifestParse {
  std::vector<JobSpec> jobs;
  std::vector<ManifestError> errors;
  bool ok() const { return errors.empty(); }
};

ManifestParse parseManifest(std::istream& in);
ManifestParse parseManifestText(const std::string& text);
/// Returns false and sets `*ioError` when the file cannot be opened.
bool parseManifestFile(const std::string& path, ManifestParse* out,
                       std::string* ioError);

}  // namespace ofl::service
