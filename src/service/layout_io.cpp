#include "service/layout_io.hpp"

#include <algorithm>

#include "gds/gds_reader.hpp"
#include "gds/oasis.hpp"
#include "geometry/polygon.hpp"

namespace ofl::service {

bool loadFlatLayout(const std::string& path,
                    const std::optional<geom::Rect>& die, layout::Layout* out,
                    std::string* error) {
  if (path.empty()) {
    *error = "missing input file path";
    return false;
  }
  auto lib = gds::Reader::readFile(path);
  if (!lib.has_value()) lib = gds::OasisReader::readFile(path);
  if (!lib.has_value()) {
    *error = "cannot read layout file: " + path;
    return false;
  }
  int maxLayer = 0;
  geom::Rect bbox;
  for (const auto& cell : lib->cells) {
    for (const auto& b : cell.boundaries) {
      maxLayer = std::max<int>(maxLayer, b.layer);
      bbox = bbox.bboxUnion(geom::Polygon(b.vertices).bbox());
    }
  }
  const geom::Rect effectiveDie = die.value_or(bbox);
  if (effectiveDie.empty()) {
    *error = "layout is empty and no die given";
    return false;
  }
  *out = layout::Layout::fromGds(*lib, effectiveDie, std::max(maxLayer, 1));
  return true;
}

}  // namespace ofl::service
