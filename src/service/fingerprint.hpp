// Content-addressed cache keys for fill results.
//
// A cache key is the combination of (a) a stable 64-bit hash of the
// flattened input layout — die, layer count and every wire rectangle — and
// (b) a fingerprint of every FillEngineOptions field that can change the
// fill solution. Existing fills are excluded from (a) because the engine
// replaces them (FillEngine::run starts with clearFills), and numThreads
// is excluded from (b) because output is bit-identical for any thread
// count (PR-1 determinism contract) — so a cached result is valid for any
// batch --threads-per-job setting.
#pragma once

#include <cstdint>

#include "fill/fill_engine.hpp"
#include "layout/layout.hpp"

namespace ofl::service {

std::uint64_t layoutContentHash(const layout::Layout& chip);
std::uint64_t optionsFingerprint(const fill::FillEngineOptions& options);

/// hashCombine(layoutContentHash, optionsFingerprint).
std::uint64_t cacheKey(const layout::Layout& chip,
                       const fill::FillEngineOptions& options);

/// Stable hash of the layout's existing fill rectangles (ECO inputs: the
/// previous solution is part of an incremental job's content).
std::uint64_t layoutFillsHash(const layout::Layout& chip);

/// Cache key for ECO jobs: cacheKey + the input fills + the changed rect,
/// domain-separated so an ECO result can never alias a full-fill result
/// on the same layout/options.
std::uint64_t ecoCacheKey(const layout::Layout& chip,
                          const fill::FillEngineOptions& options,
                          const geom::Rect& changed);

}  // namespace ofl::service
