// Cycle-canceling min-cost flow (Ahuja/Magnanti/Orlin, the paper's
// reference [17], Section 9.6): establish any feasible flow with
// Edmonds-Karp max-flow from a super source, then cancel negative-cost
// residual cycles found by Bellman-Ford until none remain.
//
// Asymptotically the weakest of the three backends, but structurally the
// most independent — it shares no machinery with NetworkSimplex or
// SuccessiveShortestPath, which is exactly what the three-way cross-check
// tests want. Potentials are recovered from a final Bellman-Ford pass.
#pragma once

#include "mcf/graph.hpp"

namespace ofl::mcf {

class CycleCanceling {
 public:
  FlowResult solve(const Graph& graph);
};

}  // namespace ofl::mcf
