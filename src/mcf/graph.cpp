#include "mcf/graph.hpp"

namespace ofl::mcf {

Value Graph::totalSupply() const {
  Value total = 0;
  for (Value s : supplies_) total += s;
  return total;
}

}  // namespace ofl::mcf
