// Differential-constraint LP solved via dual min-cost flow
// (paper Section 3.3.3, Eqns. 14-16).
//
//   min  sum_i c_i x_i
//   s.t. x_i - x_j >= b_ij   for (i, j) in E
//        l_i <= x_i <= u_i
//        x integral
//
// Transform (Eqn. 16): add y_0 with c'_0 = -sum c_i; every constraint and
// every bound becomes an arc of a min-cost flow whose node supplies are c'
// and arc costs are -b'. Optimal node potentials give y, and
// x_i = y_i - y_0 (Eqn. 16a). Integrality is free: all data are integers.
#pragma once

#include <utility>
#include <vector>

#include "mcf/graph.hpp"
#include "mcf/network_simplex.hpp"

namespace ofl::mcf {

struct DiffConstraint {
  int i;    // x_i - x_j >= bound
  int j;
  Value bound;
};

class DifferentialLp {
 public:
  /// Adds variable with objective coefficient `cost` and box [lo, hi].
  int addVariable(Value cost, Value lo, Value hi);

  /// Adds x_i - x_j >= bound.
  void addConstraint(int i, int j, Value bound);

  int numVariables() const { return static_cast<int>(costs_.size()); }
  const std::vector<DiffConstraint>& constraints() const {
    return constraints_;
  }
  Value cost(int i) const { return costs_[static_cast<std::size_t>(i)]; }
  Value lower(int i) const { return lowers_[static_cast<std::size_t>(i)]; }
  Value upper(int i) const { return uppers_[static_cast<std::size_t>(i)]; }

  /// True when `x` satisfies every constraint and bound.
  bool isFeasible(const std::vector<Value>& x) const;

  Value objective(const std::vector<Value>& x) const;

 private:
  std::vector<Value> costs_;
  std::vector<Value> lowers_;
  std::vector<Value> uppers_;
  std::vector<DiffConstraint> constraints_;
};

struct DiffLpResult {
  bool feasible = false;
  std::vector<Value> x;
  Value objective = 0;
};

enum class McfBackend {
  kNetworkSimplex,
  kSuccessiveShortestPath,
  kCycleCanceling,
};

class DifferentialLpSolver {
 public:
  explicit DifferentialLpSolver(McfBackend backend = McfBackend::kNetworkSimplex)
      : backend_(backend) {}

  DiffLpResult solve(const DifferentialLp& lp) const;

 private:
  McfBackend backend_;
};

/// Reusable solve context for sequences of differential LPs.
///
/// The sizer solves thousands of per-window LPs whose topology (variable
/// count + constraint (i,j) list) repeats across H/V rounds; this context
/// caches the dual-flow Graph and the simplex workspace so a repeat
/// topology only rewrites supplies, costs, and capacities in place instead
/// of rebuilding the network. The in-place update feeds the solver exactly
/// the graph a fresh build would, so results stay byte-identical to
/// DifferentialLpSolver — reuse changes allocation, never arithmetic.
///
/// `warmStart` additionally restarts the network simplex from the previous
/// optimal basis (NetworkSimplex::resolve). OFF by default: on LPs with
/// alternate optima a warm start can return a different optimal vertex,
/// which would break the pipeline's byte-identity contract. Opt in only
/// where any optimum is acceptable.
class DualMcfContext {
 public:
  struct Options {
    McfBackend backend = McfBackend::kNetworkSimplex;
    bool warmStart = false;
  };

  DualMcfContext() = default;
  explicit DualMcfContext(Options options) : options_(options) {}

  DiffLpResult solve(const DifferentialLp& lp);

 private:
  bool topologyMatches(const DifferentialLp& lp) const;

  Options options_;
  Graph graph_;
  NetworkSimplex simplex_;
  std::vector<std::pair<int, int>> arcPairs_;  // cached constraint (i, j)
  int numVars_ = -1;
};

}  // namespace ofl::mcf
