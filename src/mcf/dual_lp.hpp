// Differential-constraint LP solved via dual min-cost flow
// (paper Section 3.3.3, Eqns. 14-16).
//
//   min  sum_i c_i x_i
//   s.t. x_i - x_j >= b_ij   for (i, j) in E
//        l_i <= x_i <= u_i
//        x integral
//
// Transform (Eqn. 16): add y_0 with c'_0 = -sum c_i; every constraint and
// every bound becomes an arc of a min-cost flow whose node supplies are c'
// and arc costs are -b'. Optimal node potentials give y, and
// x_i = y_i - y_0 (Eqn. 16a). Integrality is free: all data are integers.
#pragma once

#include <vector>

#include "mcf/graph.hpp"

namespace ofl::mcf {

struct DiffConstraint {
  int i;    // x_i - x_j >= bound
  int j;
  Value bound;
};

class DifferentialLp {
 public:
  /// Adds variable with objective coefficient `cost` and box [lo, hi].
  int addVariable(Value cost, Value lo, Value hi);

  /// Adds x_i - x_j >= bound.
  void addConstraint(int i, int j, Value bound);

  int numVariables() const { return static_cast<int>(costs_.size()); }
  const std::vector<DiffConstraint>& constraints() const {
    return constraints_;
  }
  Value cost(int i) const { return costs_[static_cast<std::size_t>(i)]; }
  Value lower(int i) const { return lowers_[static_cast<std::size_t>(i)]; }
  Value upper(int i) const { return uppers_[static_cast<std::size_t>(i)]; }

  /// True when `x` satisfies every constraint and bound.
  bool isFeasible(const std::vector<Value>& x) const;

  Value objective(const std::vector<Value>& x) const;

 private:
  std::vector<Value> costs_;
  std::vector<Value> lowers_;
  std::vector<Value> uppers_;
  std::vector<DiffConstraint> constraints_;
};

struct DiffLpResult {
  bool feasible = false;
  std::vector<Value> x;
  Value objective = 0;
};

enum class McfBackend {
  kNetworkSimplex,
  kSuccessiveShortestPath,
  kCycleCanceling,
};

class DifferentialLpSolver {
 public:
  explicit DifferentialLpSolver(McfBackend backend = McfBackend::kNetworkSimplex)
      : backend_(backend) {}

  DiffLpResult solve(const DifferentialLp& lp) const;

 private:
  McfBackend backend_;
};

}  // namespace ofl::mcf
