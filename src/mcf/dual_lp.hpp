// Differential-constraint LP solved via dual min-cost flow
// (paper Section 3.3.3, Eqns. 14-16).
//
//   min  sum_i c_i x_i
//   s.t. x_i - x_j >= b_ij   for (i, j) in E
//        l_i <= x_i <= u_i
//        x integral
//
// Transform (Eqn. 16): add y_0 with c'_0 = -sum c_i; every constraint and
// every bound becomes an arc of a min-cost flow whose node supplies are c'
// and arc costs are -b'. Optimal node potentials give y, and
// x_i = y_i - y_0 (Eqn. 16a). Integrality is free: all data are integers.
#pragma once

#include <utility>
#include <vector>

#include "mcf/graph.hpp"
#include "mcf/network_simplex.hpp"

namespace ofl::mcf {

struct DiffConstraint {
  int i;    // x_i - x_j >= bound
  int j;
  Value bound;
};

class DifferentialLp {
 public:
  /// Adds variable with objective coefficient `cost` and box [lo, hi].
  int addVariable(Value cost, Value lo, Value hi);

  /// Adds x_i - x_j >= bound.
  void addConstraint(int i, int j, Value bound);

  int numVariables() const { return static_cast<int>(costs_.size()); }
  const std::vector<DiffConstraint>& constraints() const {
    return constraints_;
  }
  Value cost(int i) const { return costs_[static_cast<std::size_t>(i)]; }
  Value lower(int i) const { return lowers_[static_cast<std::size_t>(i)]; }
  Value upper(int i) const { return uppers_[static_cast<std::size_t>(i)]; }

  /// True when `x` satisfies every constraint and bound.
  bool isFeasible(const std::vector<Value>& x) const;

  Value objective(const std::vector<Value>& x) const;

 private:
  std::vector<Value> costs_;
  std::vector<Value> lowers_;
  std::vector<Value> uppers_;
  std::vector<DiffConstraint> constraints_;
};

struct DiffLpResult {
  bool feasible = false;
  std::vector<Value> x;
  Value objective = 0;
  // Solve provenance, for FillSizer::Stats / prof wiring. Both are false
  // on a plain cold solve.
  bool usedWarmStart = false;  // simplex restarted from the retained basis
  bool usedEarlyExit = false;  // solve skipped, memoized result returned
};

enum class McfBackend {
  kNetworkSimplex,
  kSuccessiveShortestPath,
  kCycleCanceling,
};

class DifferentialLpSolver {
 public:
  explicit DifferentialLpSolver(McfBackend backend = McfBackend::kNetworkSimplex)
      : backend_(backend) {}

  DiffLpResult solve(const DifferentialLp& lp) const;

 private:
  McfBackend backend_;
};

/// Reusable solve context for sequences of differential LPs.
///
/// The sizer solves thousands of per-window LPs whose topology (variable
/// count + constraint (i,j) list) repeats across H/V rounds; this context
/// caches the dual-flow Graph and the simplex workspace so a repeat
/// topology only rewrites supplies, costs, and capacities in place instead
/// of rebuilding the network. The in-place update feeds the solver exactly
/// the graph a fresh build would, so results stay byte-identical to
/// DifferentialLpSolver — reuse changes allocation, never arithmetic.
///
/// Canonical-optimum guarantee: every feasible solve returns the unique
/// componentwise-least optimal solution. The feasible set of a
/// differential LP with box bounds is a distributive lattice (closed under
/// componentwise min/max), so its optimal face has a least element; a
/// complementary-slackness post-pass over any optimal flow recovers it.
/// This makes solve() a pure function of the LP — independent of backend,
/// warm/cold start, and any state this context carries — which is what
/// lets the options below default to safe-but-fast behavior.
///
/// `warmStart` restarts the network simplex from the previous optimal
/// basis (NetworkSimplex::resolve). Thanks to canonicalization it returns
/// exactly the cold-start answer, only faster.
///
/// `earlyExit` memoizes the last solved LP + result on a matching
/// topology. A repeat solve is skipped when the sensitivity bound
/// sum_v |Δc_v|·(u_v−l_v) <= earlyExitTolerance and all bounds and
/// constraint offsets are unchanged. At the default tolerance 0 this is
/// exact (only cost changes on fixed variables, which cannot move the
/// optimal face); a positive tolerance trades byte-identity for speed and
/// may return a point whose objective is off by at most the tolerance.
class DualMcfContext {
 public:
  struct Options {
    McfBackend backend = McfBackend::kNetworkSimplex;
    bool warmStart = false;
    bool earlyExit = false;
    Value earlyExitTolerance = 0;
    // Benchmark/debug switch (network-simplex backend only): rebuild the
    // whole spanning tree after every pivot instead of the incremental
    // reattach. Byte-identical output, just slower — used by bench_mcf to
    // measure the pre-incremental baseline.
    bool fullPivotRefresh = false;
  };

  DualMcfContext() = default;
  explicit DualMcfContext(Options options) : options_(options) {}

  DiffLpResult solve(const DifferentialLp& lp);

 private:
  bool topologyMatches(const DifferentialLp& lp) const;
  bool tryEarlyExit(const DifferentialLp& lp, DiffLpResult& result) const;
  void rememberSolve(const DifferentialLp& lp, const DiffLpResult& result);
  void canonicalizeOptimum(const DifferentialLp& lp, const FlowResult& flow,
                           DiffLpResult& result);

  Options options_;
  Graph graph_;
  NetworkSimplex simplex_;
  std::vector<std::pair<int, int>> arcPairs_;  // cached constraint (i, j)
  int numVars_ = -1;

  // canonicalizeOptimum scratch (worklist relaxation), reused across
  // solves so the post-pass is allocation-free on the hot path.
  std::vector<int> canonTo_;
  std::vector<Value> canonW_;
  std::vector<int> canonHead_;  // per node, first outgoing edge (-1 = none)
  std::vector<int> canonNext_;  // per edge, next edge of the same node
  std::vector<Value> canonX_;
  std::vector<int> canonQueue_;
  std::vector<char> canonQueued_;

  // Early-exit memo: data of the last LP actually solved on the cached
  // topology, plus its (canonical) result.
  bool haveMemo_ = false;
  std::vector<Value> memoCosts_;
  std::vector<Value> memoLowers_;
  std::vector<Value> memoUppers_;
  std::vector<Value> memoBounds_;  // constraint offsets, in order
  DiffLpResult memoResult_;
};

}  // namespace ofl::mcf
