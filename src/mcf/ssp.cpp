#include "mcf/ssp.hpp"

#include <cassert>
#include <limits>
#include <queue>
#include <vector>

namespace ofl::mcf {
namespace {

constexpr Value kInf = std::numeric_limits<Value>::max() / 4;

// Residual arc pair encoding: residual id 2a is arc a forward, 2a+1 is its
// reverse.
struct Residual {
  std::vector<int> to;
  std::vector<Value> residualCap;
  std::vector<Value> cost;
  std::vector<std::vector<int>> adjacency;  // node -> residual arc ids

  void build(const Graph& g, const std::vector<Value>& flow) {
    const int m = g.numArcs();
    to.resize(static_cast<std::size_t>(2 * m));
    residualCap.resize(static_cast<std::size_t>(2 * m));
    cost.resize(static_cast<std::size_t>(2 * m));
    adjacency.assign(static_cast<std::size_t>(g.numNodes()), {});
    for (int a = 0; a < m; ++a) {
      const Arc& arc = g.arc(a);
      to[static_cast<std::size_t>(2 * a)] = arc.head;
      to[static_cast<std::size_t>(2 * a + 1)] = arc.tail;
      residualCap[static_cast<std::size_t>(2 * a)] =
          arc.capacity - flow[static_cast<std::size_t>(a)];
      residualCap[static_cast<std::size_t>(2 * a + 1)] =
          flow[static_cast<std::size_t>(a)];
      cost[static_cast<std::size_t>(2 * a)] = arc.cost;
      cost[static_cast<std::size_t>(2 * a + 1)] = -arc.cost;
      adjacency[static_cast<std::size_t>(arc.tail)].push_back(2 * a);
      adjacency[static_cast<std::size_t>(arc.head)].push_back(2 * a + 1);
    }
  }
};

}  // namespace

FlowResult SuccessiveShortestPath::solve(const Graph& graph) {
  FlowResult result;
  if (graph.totalSupply() != 0) {
    result.status = SolveStatus::kInfeasible;
    return result;
  }

  const int n = graph.numNodes();
  const int m = graph.numArcs();
  std::vector<Value> flow(static_cast<std::size_t>(m), 0);
  std::vector<Value> excess(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    excess[static_cast<std::size_t>(i)] = graph.supply(i);
  }

  // Pre-saturate negative arcs so all residual costs start non-negative
  // under zero potentials.
  for (int a = 0; a < m; ++a) {
    const Arc& arc = graph.arc(a);
    if (arc.cost < 0 && arc.capacity > 0) {
      flow[static_cast<std::size_t>(a)] = arc.capacity;
      excess[static_cast<std::size_t>(arc.tail)] -= arc.capacity;
      excess[static_cast<std::size_t>(arc.head)] += arc.capacity;
    }
  }

  Residual res;
  res.build(graph, flow);

  std::vector<Value> p(static_cast<std::size_t>(n), 0);  // Dijkstra potentials
  std::vector<Value> dist(static_cast<std::size_t>(n));
  std::vector<int> predResidual(static_cast<std::size_t>(n));
  using HeapItem = std::pair<Value, int>;

  auto findExcessNode = [&excess, n]() {
    for (int i = 0; i < n; ++i) {
      if (excess[static_cast<std::size_t>(i)] > 0) return i;
    }
    return -1;
  };

  int source;
  while ((source = findExcessNode()) >= 0) {
    // Dijkstra on reduced costs from `source` to the nearest deficit node.
    std::fill(dist.begin(), dist.end(), kInf);
    std::fill(predResidual.begin(), predResidual.end(), -1);
    dist[static_cast<std::size_t>(source)] = 0;
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
    heap.push({0, source});
    int target = -1;
    std::vector<char> settled(static_cast<std::size_t>(n), 0);
    while (!heap.empty()) {
      const auto [d, u] = heap.top();
      heap.pop();
      if (settled[static_cast<std::size_t>(u)]) continue;
      settled[static_cast<std::size_t>(u)] = 1;
      if (excess[static_cast<std::size_t>(u)] < 0 && target < 0) {
        target = u;
        break;  // nearest deficit reached; labels up to here suffice
      }
      for (int r : res.adjacency[static_cast<std::size_t>(u)]) {
        if (res.residualCap[static_cast<std::size_t>(r)] <= 0) continue;
        const int v = res.to[static_cast<std::size_t>(r)];
        if (settled[static_cast<std::size_t>(v)]) continue;
        const Value w = res.cost[static_cast<std::size_t>(r)] +
                        p[static_cast<std::size_t>(u)] -
                        p[static_cast<std::size_t>(v)];
        assert(w >= 0);
        if (d + w < dist[static_cast<std::size_t>(v)]) {
          dist[static_cast<std::size_t>(v)] = d + w;
          predResidual[static_cast<std::size_t>(v)] = r;
          heap.push({d + w, v});
        }
      }
    }
    if (target < 0) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }

    // Potential update: cap distances at dist[target] for unsettled nodes.
    const Value dt = dist[static_cast<std::size_t>(target)];
    for (int v = 0; v < n; ++v) {
      p[static_cast<std::size_t>(v)] +=
          std::min(dist[static_cast<std::size_t>(v)], dt);
    }

    // Bottleneck along the path.
    Value push = std::min(excess[static_cast<std::size_t>(source)],
                          -excess[static_cast<std::size_t>(target)]);
    for (int v = target; v != source;) {
      const int r = predResidual[static_cast<std::size_t>(v)];
      push = std::min(push, res.residualCap[static_cast<std::size_t>(r)]);
      v = res.to[static_cast<std::size_t>(r ^ 1)];
    }
    // Augment.
    for (int v = target; v != source;) {
      const int r = predResidual[static_cast<std::size_t>(v)];
      res.residualCap[static_cast<std::size_t>(r)] -= push;
      res.residualCap[static_cast<std::size_t>(r ^ 1)] += push;
      v = res.to[static_cast<std::size_t>(r ^ 1)];
    }
    excess[static_cast<std::size_t>(source)] -= push;
    excess[static_cast<std::size_t>(target)] += push;
  }

  result.status = SolveStatus::kOptimal;
  result.arcFlow.resize(static_cast<std::size_t>(m));
  for (int a = 0; a < m; ++a) {
    const Value f = res.residualCap[static_cast<std::size_t>(2 * a + 1)];
    result.arcFlow[static_cast<std::size_t>(a)] = f;
    result.totalCost += f * graph.arc(a).cost;
  }
  // FlowResult convention: cost - pi[tail] + pi[head] >= 0 on residual
  // arcs; the Dijkstra potential p satisfies cost + p[tail] - p[head] >= 0,
  // so pi = -p.
  result.nodePotential.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    result.nodePotential[static_cast<std::size_t>(i)] =
        -p[static_cast<std::size_t>(i)];
  }
  return result;
}

}  // namespace ofl::mcf
