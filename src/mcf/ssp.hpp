// Successive shortest path min-cost flow with Dijkstra + node potentials.
//
// Second, independently-coded backend used to cross-check NetworkSimplex
// (tests assert both produce identical optimal cost and dual-feasible
// potentials). Negative-cost arcs are handled by pre-saturation, so no
// Bellman-Ford phase is needed.
#pragma once

#include "mcf/graph.hpp"

namespace ofl::mcf {

class SuccessiveShortestPath {
 public:
  FlowResult solve(const Graph& graph);
};

}  // namespace ofl::mcf
