// Directed flow network for min-cost flow (paper Section 3.3.3).
//
// Nodes carry integer supplies (positive = source, negative = sink); arcs
// carry capacity and cost with implicit zero lower bounds. All quantities
// are 64-bit integers: the dual-LP use case requires exact integral
// optima (paper constraint x in Z).
#pragma once

#include <cstdint>
#include <vector>

namespace ofl::mcf {

using Value = std::int64_t;

struct Arc {
  int tail;
  int head;
  Value capacity;
  Value cost;
};

class Graph {
 public:
  int addNode(Value supply = 0) {
    supplies_.push_back(supply);
    return static_cast<int>(supplies_.size()) - 1;
  }

  /// Removes all nodes and arcs but keeps the storage, so a caller that
  /// rebuilds similar-sized networks in a loop (DualMcfContext on a
  /// topology change) does not reallocate per build.
  void clear() {
    supplies_.clear();
    arcs_.clear();
  }

  int addArc(int tail, int head, Value capacity, Value cost) {
    arcs_.push_back({tail, head, capacity, cost});
    return static_cast<int>(arcs_.size()) - 1;
  }

  int numNodes() const { return static_cast<int>(supplies_.size()); }
  int numArcs() const { return static_cast<int>(arcs_.size()); }

  Value supply(int node) const {
    return supplies_[static_cast<std::size_t>(node)];
  }
  void setSupply(int node, Value s) {
    supplies_[static_cast<std::size_t>(node)] = s;
  }
  const Arc& arc(int a) const { return arcs_[static_cast<std::size_t>(a)]; }
  /// Mutable access for callers that update costs/capacities in place
  /// while keeping the arc topology (DualMcfContext network reuse).
  Arc& arc(int a) { return arcs_[static_cast<std::size_t>(a)]; }
  const std::vector<Arc>& arcs() const { return arcs_; }

  /// Sum of all supplies; a balanced network has zero.
  Value totalSupply() const;

 private:
  std::vector<Value> supplies_;
  std::vector<Arc> arcs_;
};

enum class SolveStatus {
  kOptimal,
  kInfeasible,  // supplies cannot be routed within capacities
  kUnbounded,   // negative-cost cycle with unlimited capacity
};

struct FlowResult {
  SolveStatus status = SolveStatus::kInfeasible;
  Value totalCost = 0;
  std::vector<Value> arcFlow;        // per arc
  std::vector<Value> nodePotential;  // per node; reduced cost
                                     // c - pi[tail] + pi[head] >= 0 holds on
                                     // every residual arc at optimality
};

}  // namespace ofl::mcf
