#include "mcf/dual_lp.hpp"

#include <algorithm>
#include <cassert>

#include "common/prof.hpp"
#include "mcf/cycle_canceling.hpp"
#include "mcf/network_simplex.hpp"
#include "mcf/ssp.hpp"

namespace ofl::mcf {

int DifferentialLp::addVariable(Value cost, Value lo, Value hi) {
  assert(lo <= hi);
  costs_.push_back(cost);
  lowers_.push_back(lo);
  uppers_.push_back(hi);
  return numVariables() - 1;
}

void DifferentialLp::addConstraint(int i, int j, Value bound) {
  assert(i != j && i >= 0 && j >= 0);
  assert(i < numVariables() && j < numVariables());
  constraints_.push_back({i, j, bound});
}

bool DifferentialLp::isFeasible(const std::vector<Value>& x) const {
  if (x.size() != costs_.size()) return false;
  for (int v = 0; v < numVariables(); ++v) {
    const Value xv = x[static_cast<std::size_t>(v)];
    if (xv < lower(v) || xv > upper(v)) return false;
  }
  for (const DiffConstraint& c : constraints_) {
    if (x[static_cast<std::size_t>(c.i)] - x[static_cast<std::size_t>(c.j)] <
        c.bound) {
      return false;
    }
  }
  return true;
}

Value DifferentialLp::objective(const std::vector<Value>& x) const {
  Value obj = 0;
  for (int v = 0; v < numVariables(); ++v) {
    obj += cost(v) * x[static_cast<std::size_t>(v)];
  }
  return obj;
}

DiffLpResult DifferentialLpSolver::solve(const DifferentialLp& lp) const {
  // One-shot path: a fresh context cold-starts. The canonical-optimum
  // post-pass makes this byte-identical to any warm-started context.
  DualMcfContext context(DualMcfContext::Options{backend_, false});
  return context.solve(lp);
}

// Replaces result.x with the componentwise-least point of the optimal
// face. `flow` is any optimal flow of the dual network whose recovered x
// passed the feasibility check, so complementary slackness pins the face:
// constraint arcs with positive flow are tight at EVERY optimum, and a
// bound arc with positive flow pins its variable to that bound. The face
// is then a difference-constraint system closed under componentwise min,
// and the least element is the fixpoint of raising from the lower bounds —
// the same answer no matter which optimal flow described the face.
void DualMcfContext::canonicalizeOptimum(const DifferentialLp& lp,
                                         const FlowResult& flow,
                                         DiffLpResult& result) {
  const int n = lp.numVariables();
  const auto& cons = lp.constraints();
  const int numCons = static_cast<int>(cons.size());

  // Raise edges x[to] >= x[from] + w, in per-node intrusive lists so the
  // worklist below only re-examines successors of nodes that moved.
  canonTo_.clear();
  canonW_.clear();
  canonHead_.assign(static_cast<std::size_t>(n), -1);
  canonNext_.clear();
  const auto addEdge = [&](int from, int to, Value w) {
    const int e = static_cast<int>(canonTo_.size());
    canonTo_.push_back(to);
    canonW_.push_back(w);
    canonNext_.push_back(canonHead_[static_cast<std::size_t>(from)]);
    canonHead_[static_cast<std::size_t>(from)] = e;
  };
  for (int c = 0; c < numCons; ++c) {
    const DiffConstraint& dc = cons[static_cast<std::size_t>(c)];
    addEdge(dc.j, dc.i, dc.bound);
    if (flow.arcFlow[static_cast<std::size_t>(c)] > 0) {
      // Tight at every optimum: add the reverse inequality as well.
      addEdge(dc.i, dc.j, -dc.bound);
    }
  }

  canonX_.resize(static_cast<std::size_t>(n));
  canonQueue_.clear();
  canonQueued_.assign(static_cast<std::size_t>(n), 1);
  for (int v = 0; v < n; ++v) {
    // Per-variable arcs follow the constraint arcs: lower then upper;
    // positive flow on the upper arc pins x_v = u_v, on the lower arc it
    // pins x_v = l_v — the starting value either way.
    const auto upperArc = static_cast<std::size_t>(numCons + 2 * v + 1);
    canonX_[static_cast<std::size_t>(v)] =
        flow.arcFlow[upperArc] > 0 ? lp.upper(v) : lp.lower(v);
    canonQueue_.push_back(v);
  }

  // Least fixpoint by worklist relaxation. The face is non-empty
  // (result.x lies on it), so every raise stays <= result.x; each
  // variable rises at most n times, which bounds the work. The cap only
  // trips on a violated expectation, and then the solver vertex stands.
  const long long maxPops =
      static_cast<long long>(n + 1) * (n + static_cast<int>(canonTo_.size()));
  long long pops = 0;
  for (std::size_t qi = 0; qi < canonQueue_.size(); ++qi) {
    if (++pops > maxPops) return;
    const int from = canonQueue_[qi];
    canonQueued_[static_cast<std::size_t>(from)] = 0;
    const Value base = canonX_[static_cast<std::size_t>(from)];
    for (int e = canonHead_[static_cast<std::size_t>(from)]; e != -1;
         e = canonNext_[static_cast<std::size_t>(e)]) {
      const int to = canonTo_[static_cast<std::size_t>(e)];
      const Value need = base + canonW_[static_cast<std::size_t>(e)];
      if (canonX_[static_cast<std::size_t>(to)] < need) {
        canonX_[static_cast<std::size_t>(to)] = need;
        if (canonQueued_[static_cast<std::size_t>(to)] == 0) {
          canonQueued_[static_cast<std::size_t>(to)] = 1;
          canonQueue_.push_back(to);
        }
      }
    }
  }
  // Adopt only a verified exact optimum; on any violated expectation keep
  // the solver's vertex (never happens for a correct optimal flow, but a
  // wrong canonical answer must not be able to corrupt the solve).
  if (!lp.isFeasible(canonX_) ||
      lp.objective(canonX_) != lp.objective(result.x)) {
    return;
  }
  result.x = canonX_;
}

bool DualMcfContext::tryEarlyExit(const DifferentialLp& lp,
                                  DiffLpResult& result) const {
  if (!options_.earlyExit || !haveMemo_ || !topologyMatches(lp)) return false;
  const int n = lp.numVariables();
  for (int v = 0; v < n; ++v) {
    if (memoLowers_[static_cast<std::size_t>(v)] != lp.lower(v) ||
        memoUppers_[static_cast<std::size_t>(v)] != lp.upper(v)) {
      return false;
    }
  }
  const auto& cons = lp.constraints();
  for (std::size_t c = 0; c < cons.size(); ++c) {
    if (memoBounds_[c] != cons[c].bound) return false;
  }
  // Sensitivity bound: with identical bounds and offsets the memoized x is
  // still feasible, and its objective under the new costs is within
  // sum_v |Δc_v|·(u_v−l_v) of the new optimum. At tolerance 0 only
  // fixed-variable cost changes pass, which cannot move the optimal face.
  Value drift = 0;
  for (int v = 0; v < n; ++v) {
    const Value dc = lp.cost(v) - memoCosts_[static_cast<std::size_t>(v)];
    drift += std::abs(dc) * (lp.upper(v) - lp.lower(v));
    if (drift > options_.earlyExitTolerance) return false;
  }
  result = memoResult_;
  if (result.feasible) result.objective = lp.objective(result.x);
  result.usedWarmStart = false;
  result.usedEarlyExit = true;
  return true;
}

void DualMcfContext::rememberSolve(const DifferentialLp& lp,
                                   const DiffLpResult& result) {
  if (!options_.earlyExit) return;
  const int n = lp.numVariables();
  memoCosts_.resize(static_cast<std::size_t>(n));
  memoLowers_.resize(static_cast<std::size_t>(n));
  memoUppers_.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    memoCosts_[static_cast<std::size_t>(v)] = lp.cost(v);
    memoLowers_[static_cast<std::size_t>(v)] = lp.lower(v);
    memoUppers_[static_cast<std::size_t>(v)] = lp.upper(v);
  }
  const auto& cons = lp.constraints();
  memoBounds_.resize(cons.size());
  for (std::size_t c = 0; c < cons.size(); ++c) {
    memoBounds_[c] = cons[c].bound;
  }
  memoResult_ = result;
  memoResult_.usedWarmStart = false;
  memoResult_.usedEarlyExit = false;
  haveMemo_ = true;
}

bool DualMcfContext::topologyMatches(const DifferentialLp& lp) const {
  if (numVars_ != lp.numVariables()) return false;
  const auto& constraints = lp.constraints();
  if (arcPairs_.size() != constraints.size()) return false;
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    if (arcPairs_[c].first != constraints[c].i ||
        arcPairs_[c].second != constraints[c].j) {
      return false;
    }
  }
  return true;
}

DiffLpResult DualMcfContext::solve(const DifferentialLp& lp) {
  prof::ScopedTimer timer(prof::Stage::kMcfSolve);
  prof::count(prof::Counter::kMcfSolves);
  DiffLpResult result;
  const int n = lp.numVariables();
  if (n == 0) {
    result.feasible = true;
    return result;
  }
  if (tryEarlyExit(lp, result)) {
    prof::count(prof::Counter::kMcfEarlyExits);
    return result;
  }

  // Dual min-cost flow data (Eqn. 16). Node 0 is y_0; node v+1 is
  // variable v. Supplies are c'; each inequality y_i - y_j >= b' becomes
  // an arc i -> j with cost -b'.
  Value sumCosts = 0;
  Value positiveSupply = 0;
  for (int v = 0; v < n; ++v) {
    sumCosts += lp.cost(v);
    positiveSupply += std::max<Value>(lp.cost(v), 0);
  }
  positiveSupply += std::max<Value>(-sumCosts, 0);

  // Any cycle-free optimal flow routes at most the total positive supply
  // through an arc; the margin keeps every arc strictly below capacity in
  // some optimum, which preserves dual feasibility of the potentials for
  // the uncapacitated LP. Supplies are per-solve data, so capacities are
  // rewritten even when the network is reused.
  const Value cap = 4 * positiveSupply + 4;

  if (topologyMatches(lp)) {
    prof::count(prof::Counter::kMcfNetworkReuses);
    graph_.setSupply(0, -sumCosts);
    for (int v = 0; v < n; ++v) graph_.setSupply(v + 1, lp.cost(v));
    int a = 0;
    for (const DiffConstraint& c : lp.constraints()) {
      Arc& arc = graph_.arc(a++);
      arc.capacity = cap;
      arc.cost = -c.bound;
    }
    for (int v = 0; v < n; ++v) {
      Arc& lowerArc = graph_.arc(a++);
      lowerArc.capacity = cap;
      lowerArc.cost = -lp.lower(v);
      Arc& upperArc = graph_.arc(a++);
      upperArc.capacity = cap;
      upperArc.cost = lp.upper(v);
    }
  } else {
    graph_.clear();
    graph_.addNode(-sumCosts);  // c'_0
    for (int v = 0; v < n; ++v) graph_.addNode(lp.cost(v));
    for (const DiffConstraint& c : lp.constraints()) {
      graph_.addArc(c.i + 1, c.j + 1, cap, -c.bound);
    }
    for (int v = 0; v < n; ++v) {
      graph_.addArc(v + 1, 0, cap, -lp.lower(v));  // y_v - y_0 >= l_v
      graph_.addArc(0, v + 1, cap, lp.upper(v));   // y_0 - y_v >= -u_v
    }
    arcPairs_.clear();
    arcPairs_.reserve(lp.constraints().size());
    for (const DiffConstraint& c : lp.constraints()) {
      arcPairs_.push_back({c.i, c.j});
    }
    numVars_ = n;
  }

  FlowResult flow;
  switch (options_.backend) {
    case McfBackend::kNetworkSimplex:
      simplex_.setFullPivotRefresh(options_.fullPivotRefresh);
      flow = options_.warmStart ? simplex_.resolve(graph_)
                                : simplex_.solve(graph_);
      if (simplex_.lastSolveWarm()) {
        result.usedWarmStart = true;
        prof::count(prof::Counter::kMcfWarmStarts);
      }
      break;
    case McfBackend::kSuccessiveShortestPath:
      flow = SuccessiveShortestPath().solve(graph_);
      break;
    case McfBackend::kCycleCanceling:
      flow = CycleCanceling().solve(graph_);
      break;
  }
  if (flow.status != SolveStatus::kOptimal) {
    rememberSolve(lp, result);
    return result;
  }

  // y = -pi (see FlowResult's reduced-cost convention); x_v = y_{v+1} - y_0.
  result.x.resize(static_cast<std::size_t>(n));
  const Value y0 = -flow.nodePotential[0];
  for (int v = 0; v < n; ++v) {
    result.x[static_cast<std::size_t>(v)] =
        -flow.nodePotential[static_cast<std::size_t>(v + 1)] - y0;
  }
  // An infeasible LP surfaces as capacity-saturated arcs whose potentials
  // are not dual feasible; verifying the recovered x catches that case.
  if (!lp.isFeasible(result.x)) {
    rememberSolve(lp, result);
    return result;
  }
  // Feasibility also certifies the flow as optimal for the uncapacitated
  // dual network, which is what the canonicalization's complementary-
  // slackness argument needs.
  canonicalizeOptimum(lp, flow, result);
  result.feasible = true;
  result.objective = lp.objective(result.x);
  rememberSolve(lp, result);
  return result;
}

}  // namespace ofl::mcf
