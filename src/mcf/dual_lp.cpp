#include "mcf/dual_lp.hpp"

#include <algorithm>
#include <cassert>

#include "common/prof.hpp"
#include "mcf/cycle_canceling.hpp"
#include "mcf/network_simplex.hpp"
#include "mcf/ssp.hpp"

namespace ofl::mcf {

int DifferentialLp::addVariable(Value cost, Value lo, Value hi) {
  assert(lo <= hi);
  costs_.push_back(cost);
  lowers_.push_back(lo);
  uppers_.push_back(hi);
  return numVariables() - 1;
}

void DifferentialLp::addConstraint(int i, int j, Value bound) {
  assert(i != j && i >= 0 && j >= 0);
  assert(i < numVariables() && j < numVariables());
  constraints_.push_back({i, j, bound});
}

bool DifferentialLp::isFeasible(const std::vector<Value>& x) const {
  if (x.size() != costs_.size()) return false;
  for (int v = 0; v < numVariables(); ++v) {
    const Value xv = x[static_cast<std::size_t>(v)];
    if (xv < lower(v) || xv > upper(v)) return false;
  }
  for (const DiffConstraint& c : constraints_) {
    if (x[static_cast<std::size_t>(c.i)] - x[static_cast<std::size_t>(c.j)] <
        c.bound) {
      return false;
    }
  }
  return true;
}

Value DifferentialLp::objective(const std::vector<Value>& x) const {
  Value obj = 0;
  for (int v = 0; v < numVariables(); ++v) {
    obj += cost(v) * x[static_cast<std::size_t>(v)];
  }
  return obj;
}

DiffLpResult DifferentialLpSolver::solve(const DifferentialLp& lp) const {
  // One-shot path: a fresh context cold-starts, which is exactly the
  // historical behavior (and its byte-for-byte results).
  DualMcfContext context(DualMcfContext::Options{backend_, false});
  return context.solve(lp);
}

bool DualMcfContext::topologyMatches(const DifferentialLp& lp) const {
  if (numVars_ != lp.numVariables()) return false;
  const auto& constraints = lp.constraints();
  if (arcPairs_.size() != constraints.size()) return false;
  for (std::size_t c = 0; c < constraints.size(); ++c) {
    if (arcPairs_[c].first != constraints[c].i ||
        arcPairs_[c].second != constraints[c].j) {
      return false;
    }
  }
  return true;
}

DiffLpResult DualMcfContext::solve(const DifferentialLp& lp) {
  prof::ScopedTimer timer(prof::Stage::kMcfSolve);
  prof::count(prof::Counter::kMcfSolves);
  DiffLpResult result;
  const int n = lp.numVariables();
  if (n == 0) {
    result.feasible = true;
    return result;
  }

  // Dual min-cost flow data (Eqn. 16). Node 0 is y_0; node v+1 is
  // variable v. Supplies are c'; each inequality y_i - y_j >= b' becomes
  // an arc i -> j with cost -b'.
  Value sumCosts = 0;
  Value positiveSupply = 0;
  for (int v = 0; v < n; ++v) {
    sumCosts += lp.cost(v);
    positiveSupply += std::max<Value>(lp.cost(v), 0);
  }
  positiveSupply += std::max<Value>(-sumCosts, 0);

  // Any cycle-free optimal flow routes at most the total positive supply
  // through an arc; the margin keeps every arc strictly below capacity in
  // some optimum, which preserves dual feasibility of the potentials for
  // the uncapacitated LP. Supplies are per-solve data, so capacities are
  // rewritten even when the network is reused.
  const Value cap = 4 * positiveSupply + 4;

  if (topologyMatches(lp)) {
    prof::count(prof::Counter::kMcfNetworkReuses);
    graph_.setSupply(0, -sumCosts);
    for (int v = 0; v < n; ++v) graph_.setSupply(v + 1, lp.cost(v));
    int a = 0;
    for (const DiffConstraint& c : lp.constraints()) {
      Arc& arc = graph_.arc(a++);
      arc.capacity = cap;
      arc.cost = -c.bound;
    }
    for (int v = 0; v < n; ++v) {
      Arc& lowerArc = graph_.arc(a++);
      lowerArc.capacity = cap;
      lowerArc.cost = -lp.lower(v);
      Arc& upperArc = graph_.arc(a++);
      upperArc.capacity = cap;
      upperArc.cost = lp.upper(v);
    }
  } else {
    graph_ = Graph();
    graph_.addNode(-sumCosts);  // c'_0
    for (int v = 0; v < n; ++v) graph_.addNode(lp.cost(v));
    for (const DiffConstraint& c : lp.constraints()) {
      graph_.addArc(c.i + 1, c.j + 1, cap, -c.bound);
    }
    for (int v = 0; v < n; ++v) {
      graph_.addArc(v + 1, 0, cap, -lp.lower(v));  // y_v - y_0 >= l_v
      graph_.addArc(0, v + 1, cap, lp.upper(v));   // y_0 - y_v >= -u_v
    }
    arcPairs_.clear();
    arcPairs_.reserve(lp.constraints().size());
    for (const DiffConstraint& c : lp.constraints()) {
      arcPairs_.push_back({c.i, c.j});
    }
    numVars_ = n;
  }

  FlowResult flow;
  switch (options_.backend) {
    case McfBackend::kNetworkSimplex:
      flow = options_.warmStart ? simplex_.resolve(graph_)
                                : simplex_.solve(graph_);
      if (simplex_.lastSolveWarm()) {
        prof::count(prof::Counter::kMcfWarmStarts);
      }
      break;
    case McfBackend::kSuccessiveShortestPath:
      flow = SuccessiveShortestPath().solve(graph_);
      break;
    case McfBackend::kCycleCanceling:
      flow = CycleCanceling().solve(graph_);
      break;
  }
  if (flow.status != SolveStatus::kOptimal) return result;

  // y = -pi (see FlowResult's reduced-cost convention); x_v = y_{v+1} - y_0.
  result.x.resize(static_cast<std::size_t>(n));
  const Value y0 = -flow.nodePotential[0];
  for (int v = 0; v < n; ++v) {
    result.x[static_cast<std::size_t>(v)] =
        -flow.nodePotential[static_cast<std::size_t>(v + 1)] - y0;
  }
  // An infeasible LP surfaces as capacity-saturated arcs whose potentials
  // are not dual feasible; verifying the recovered x catches that case.
  if (!lp.isFeasible(result.x)) return result;
  result.feasible = true;
  result.objective = lp.objective(result.x);
  return result;
}

}  // namespace ofl::mcf
