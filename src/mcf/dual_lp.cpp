#include "mcf/dual_lp.hpp"

#include <cassert>

#include "mcf/cycle_canceling.hpp"
#include "mcf/network_simplex.hpp"
#include "mcf/ssp.hpp"

namespace ofl::mcf {

int DifferentialLp::addVariable(Value cost, Value lo, Value hi) {
  assert(lo <= hi);
  costs_.push_back(cost);
  lowers_.push_back(lo);
  uppers_.push_back(hi);
  return numVariables() - 1;
}

void DifferentialLp::addConstraint(int i, int j, Value bound) {
  assert(i != j && i >= 0 && j >= 0);
  assert(i < numVariables() && j < numVariables());
  constraints_.push_back({i, j, bound});
}

bool DifferentialLp::isFeasible(const std::vector<Value>& x) const {
  if (x.size() != costs_.size()) return false;
  for (int v = 0; v < numVariables(); ++v) {
    const Value xv = x[static_cast<std::size_t>(v)];
    if (xv < lower(v) || xv > upper(v)) return false;
  }
  for (const DiffConstraint& c : constraints_) {
    if (x[static_cast<std::size_t>(c.i)] - x[static_cast<std::size_t>(c.j)] <
        c.bound) {
      return false;
    }
  }
  return true;
}

Value DifferentialLp::objective(const std::vector<Value>& x) const {
  Value obj = 0;
  for (int v = 0; v < numVariables(); ++v) {
    obj += cost(v) * x[static_cast<std::size_t>(v)];
  }
  return obj;
}

DiffLpResult DifferentialLpSolver::solve(const DifferentialLp& lp) const {
  DiffLpResult result;
  const int n = lp.numVariables();
  if (n == 0) {
    result.feasible = true;
    return result;
  }

  // Build the dual min-cost flow (Eqn. 16). Node 0 is y_0; node v+1 is
  // variable v. Supplies are c'; each inequality y_i - y_j >= b' becomes an
  // arc i -> j with cost -b'.
  Graph graph;
  Value sumCosts = 0;
  Value positiveSupply = 0;
  for (int v = 0; v < n; ++v) sumCosts += lp.cost(v);
  graph.addNode(-sumCosts);  // c'_0
  for (int v = 0; v < n; ++v) {
    graph.addNode(lp.cost(v));
    positiveSupply += std::max<Value>(lp.cost(v), 0);
  }
  positiveSupply += std::max<Value>(-sumCosts, 0);

  // Any cycle-free optimal flow routes at most the total positive supply
  // through an arc; the margin keeps every arc strictly below capacity in
  // some optimum, which preserves dual feasibility of the potentials for
  // the uncapacitated LP.
  const Value cap = 4 * positiveSupply + 4;

  for (const DiffConstraint& c : lp.constraints()) {
    graph.addArc(c.i + 1, c.j + 1, cap, -c.bound);
  }
  for (int v = 0; v < n; ++v) {
    graph.addArc(v + 1, 0, cap, -lp.lower(v));  // y_v - y_0 >= l_v
    graph.addArc(0, v + 1, cap, lp.upper(v));   // y_0 - y_v >= -u_v
  }

  FlowResult flow;
  switch (backend_) {
    case McfBackend::kNetworkSimplex:
      flow = NetworkSimplex().solve(graph);
      break;
    case McfBackend::kSuccessiveShortestPath:
      flow = SuccessiveShortestPath().solve(graph);
      break;
    case McfBackend::kCycleCanceling:
      flow = CycleCanceling().solve(graph);
      break;
  }
  if (flow.status != SolveStatus::kOptimal) return result;

  // y = -pi (see FlowResult's reduced-cost convention); x_v = y_{v+1} - y_0.
  result.x.resize(static_cast<std::size_t>(n));
  const Value y0 = -flow.nodePotential[0];
  for (int v = 0; v < n; ++v) {
    result.x[static_cast<std::size_t>(v)] =
        -flow.nodePotential[static_cast<std::size_t>(v + 1)] - y0;
  }
  // An infeasible LP surfaces as capacity-saturated arcs whose potentials
  // are not dual feasible; verifying the recovered x catches that case.
  if (!lp.isFeasible(result.x)) return result;
  result.feasible = true;
  result.objective = lp.objective(result.x);
  return result;
}

}  // namespace ofl::mcf
