// Primal network simplex for min-cost flow.
//
// This is the library's substitute for LEMON's NetworkSimplex (the solver
// the paper uses). Standard textbook construction: artificial big-cost
// root arcs form the initial spanning-tree basis; entering arcs are picked
// by block pricing; potentials are refreshed by a root BFS after each
// pivot. Problem instances in the fill flow are per-window and small
// (hundreds of nodes), so the O(n) refresh is the simple *and* fast choice.
#pragma once

#include "mcf/graph.hpp"

namespace ofl::mcf {

class NetworkSimplex {
 public:
  /// Solves min-cost flow on `graph`. Supplies must sum to zero, all
  /// capacities must be >= 0.
  FlowResult solve(const Graph& graph);
};

}  // namespace ofl::mcf
