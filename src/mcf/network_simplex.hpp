// Primal network simplex for min-cost flow.
//
// This is the library's substitute for LEMON's NetworkSimplex (the solver
// the paper uses). Standard textbook construction: artificial big-cost
// root arcs form the initial spanning-tree basis; entering arcs are picked
// by block pricing; after each pivot only the detached component of the
// tree is reattached and its potentials shifted (O(component), identical
// values to a full root BFS — see reattachSubtree). Problem instances in
// the fill flow are per-window and small (hundreds of nodes).
//
// The solver object is reusable: all working arrays persist across solve()
// calls, so a caller solving many same-shaped instances (the sizer's
// alternating H/V passes) pays for allocation once. resolve() additionally
// tries to keep the previous optimal basis as the starting tree.
#pragma once

#include <vector>

#include "mcf/graph.hpp"

namespace ofl::mcf {

class NetworkSimplex {
 public:
  /// Solves min-cost flow on `graph` from the standard all-artificial
  /// starting basis. Supplies must sum to zero, all capacities >= 0.
  /// Deterministic: a given graph always produces the same pivot sequence
  /// and therefore the same optimal flow and potentials.
  FlowResult solve(const Graph& graph);

  /// Like solve(), but when the previous call left an optimal basis for a
  /// graph with the same node/arc counts and arc endpoints, restarts from
  /// that tree: non-tree arcs keep their bound, tree flows are recomputed
  /// for the new supplies/capacities (artificial root arcs are reoriented
  /// when a node's supply sign flipped), and the pivot loop continues from
  /// there. Falls back to the cold start when no basis fits or the old
  /// tree is not primal feasible for the new data.
  ///
  /// CAUTION: on LPs with alternate optima a warm start may return a
  /// DIFFERENT optimal vertex than solve() — equal objective, different
  /// flows/potentials. Raw-flow callers needing byte-identical output must
  /// either stick to solve() or canonicalize the returned optimum
  /// themselves. The differential-LP layer (DualMcfContext) does exactly
  /// that: it maps any optimal vertex to the unique componentwise-least
  /// optimal solution, so sizer output is identical warm or cold.
  FlowResult resolve(const Graph& graph);

  /// Debug/benchmark switch: when on, every pivot rebuilds the whole tree
  /// (the pre-incremental behavior) instead of reattaching only the
  /// detached component. Results are identical either way — the knob
  /// exists so benchmarks can attribute speedups to the incremental
  /// update. Off by default.
  void setFullPivotRefresh(bool on) { fullPivotRefresh_ = on; }

  /// True when the last solve()/resolve() used the retained basis.
  bool lastSolveWarm() const { return lastWarm_; }

  /// Alias of lastSolveWarm() matching the FillSizer::Stats terminology.
  bool usedWarmStart() const { return lastWarm_; }

 private:
  void initCold(const Graph& graph);
  bool initWarm(const Graph& graph);
  FlowResult run(const Graph& graph);

  Value reducedCost(int a) const {
    return cost_[static_cast<std::size_t>(a)] -
           pi_[static_cast<std::size_t>(tail_[static_cast<std::size_t>(a)])] +
           pi_[static_cast<std::size_t>(head_[static_cast<std::size_t>(a)])];
  }
  void refreshTree();
  /// Incremental basis update after a pivot: the leaving arc has already
  /// been removed and `entering` added to treeAdj_, and `inNode` is the
  /// entering endpoint inside the detached component. Rebuilds parent /
  /// depth and shifts pi for that component only — the values come out
  /// exactly as a full refreshTree() would produce them (the main-tree
  /// relations are untouched and the detached component's potentials all
  /// move by the entering arc's reduced cost), just in O(component).
  void reattachSubtree(int entering, int inNode);
  void removeTreeArc(int a);
  void addTreeArc(int a);

  // Arc arrays (original arcs first, then one artificial arc per node).
  std::vector<int> tail_;
  std::vector<int> head_;
  std::vector<Value> cap_;
  std::vector<Value> cost_;
  std::vector<Value> flow_;
  std::vector<signed char> state_;

  // Spanning-tree structure over numNodes_ nodes (root last).
  int numNodes_ = 0;
  int root_ = 0;
  int firstArtificial_ = 0;
  std::vector<int> parent_;
  std::vector<int> predArc_;
  std::vector<int> depth_;
  std::vector<Value> pi_;
  std::vector<std::vector<int>> treeAdj_;  // node -> incident tree arc ids

  // Per-call scratch, kept for its capacity.
  std::vector<int> stack_;
  std::vector<char> visited_;
  std::vector<int> bfsOrder_;  // refreshTree visit order, root first
  std::vector<Value> excess_;
  struct Step {
    int arc;
    bool flowIncreases;
    bool uSide;  // recorded on the u-walk (tail side of the entering arc)
  };
  std::vector<Step> steps_;  // pivot-cycle path, reused across pivots

  bool fullPivotRefresh_ = false;

  // Basis bookkeeping for resolve().
  bool hasBasis_ = false;
  bool lastWarm_ = false;
  int basisNodes_ = 0;  // graph nodes (excluding root) of the stored basis
  int basisArcs_ = 0;   // original graph arcs of the stored basis
};

}  // namespace ofl::mcf
