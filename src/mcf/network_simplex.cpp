#include "mcf/network_simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace ofl::mcf {
namespace {

enum ArcState : signed char { kAtLower = -1, kInTree = 0, kAtUpper = 1 };

}  // namespace

void NetworkSimplex::refreshTree() {
  visited_.assign(static_cast<std::size_t>(numNodes_), 0);
  stack_.clear();
  stack_.push_back(root_);
  bfsOrder_.clear();
  parent_[static_cast<std::size_t>(root_)] = -1;
  predArc_[static_cast<std::size_t>(root_)] = -1;
  depth_[static_cast<std::size_t>(root_)] = 0;
  visited_[static_cast<std::size_t>(root_)] = 1;
  while (!stack_.empty()) {
    const int u = stack_.back();
    stack_.pop_back();
    bfsOrder_.push_back(u);
    for (int a : treeAdj_[static_cast<std::size_t>(u)]) {
      const auto ai = static_cast<std::size_t>(a);
      const int v = (tail_[ai] == u) ? head_[ai] : tail_[ai];
      const auto vi = static_cast<std::size_t>(v);
      if (visited_[vi]) continue;
      visited_[vi] = 1;
      parent_[vi] = u;
      predArc_[vi] = a;
      depth_[vi] = depth_[static_cast<std::size_t>(u)] + 1;
      // Tree arcs have zero reduced cost: cost - pi[tail] + pi[head] = 0,
      // i.e. pi[head] = pi[tail] - cost.
      if (tail_[ai] == u) {
        pi_[vi] = pi_[static_cast<std::size_t>(u)] - cost_[ai];  // v == head
      } else {
        pi_[vi] = pi_[static_cast<std::size_t>(u)] + cost_[ai];  // v == tail
      }
      stack_.push_back(v);
    }
  }
}

void NetworkSimplex::reattachSubtree(int entering, int inNode) {
  const auto ei = static_cast<std::size_t>(entering);
  const auto ini = static_cast<std::size_t>(inNode);
  const int outNode = (tail_[ei] == inNode) ? head_[ei] : tail_[ei];
  const auto outi = static_cast<std::size_t>(outNode);
  // New tree arcs are tight (zero reduced cost); the detached component's
  // internal relations are unchanged, so every node in it shifts by the
  // same delta the entering arc forces on inNode.
  const Value newPiIn = (head_[ei] == inNode) ? pi_[outi] - cost_[ei]
                                              : pi_[outi] + cost_[ei];
  const Value delta = newPiIn - pi_[ini];
  // DFS stays inside the detached component: its only link to the rest of
  // the tree is `entering`, and marking outNode visited blocks it.
  visited_.assign(static_cast<std::size_t>(numNodes_), 0);
  visited_[outi] = 1;
  visited_[ini] = 1;
  parent_[ini] = outNode;
  predArc_[ini] = entering;
  depth_[ini] = depth_[outi] + 1;
  pi_[ini] += delta;
  stack_.clear();
  stack_.push_back(inNode);
  while (!stack_.empty()) {
    const int u = stack_.back();
    stack_.pop_back();
    for (int a : treeAdj_[static_cast<std::size_t>(u)]) {
      const auto ai = static_cast<std::size_t>(a);
      const int v = (tail_[ai] == u) ? head_[ai] : tail_[ai];
      const auto vi = static_cast<std::size_t>(v);
      if (visited_[vi]) continue;
      visited_[vi] = 1;
      parent_[vi] = u;
      predArc_[vi] = a;
      depth_[vi] = depth_[static_cast<std::size_t>(u)] + 1;
      pi_[vi] += delta;
      stack_.push_back(v);
    }
  }
}

void NetworkSimplex::removeTreeArc(int a) {
  const auto ai = static_cast<std::size_t>(a);
  for (int endpoint : {tail_[ai], head_[ai]}) {
    auto& adj = treeAdj_[static_cast<std::size_t>(endpoint)];
    adj.erase(std::find(adj.begin(), adj.end(), a));
  }
}

void NetworkSimplex::addTreeArc(int a) {
  const auto ai = static_cast<std::size_t>(a);
  treeAdj_[static_cast<std::size_t>(tail_[ai])].push_back(a);
  treeAdj_[static_cast<std::size_t>(head_[ai])].push_back(a);
}

void NetworkSimplex::initCold(const Graph& graph) {
  const int n = graph.numNodes();
  const int m = graph.numArcs();

  numNodes_ = n + 1;
  root_ = n;
  firstArtificial_ = m;

  Value costSum = 1;
  Value positiveSupply = 0;
  for (const Arc& a : graph.arcs()) {
    assert(a.capacity >= 0);
    costSum += std::abs(a.cost);
  }
  for (int i = 0; i < n; ++i) {
    positiveSupply += std::max<Value>(graph.supply(i), 0);
  }
  const Value big = costSum;  // dominates any simple-path cost
  const Value artCap = positiveSupply + 1;

  const int totalArcs = m + n;
  tail_.resize(static_cast<std::size_t>(totalArcs));
  head_.resize(static_cast<std::size_t>(totalArcs));
  cap_.resize(static_cast<std::size_t>(totalArcs));
  cost_.resize(static_cast<std::size_t>(totalArcs));
  flow_.assign(static_cast<std::size_t>(totalArcs), 0);
  state_.assign(static_cast<std::size_t>(totalArcs), kAtLower);

  for (int a = 0; a < m; ++a) {
    const Arc& arc = graph.arc(a);
    tail_[static_cast<std::size_t>(a)] = arc.tail;
    head_[static_cast<std::size_t>(a)] = arc.head;
    cap_[static_cast<std::size_t>(a)] = arc.capacity;
    cost_[static_cast<std::size_t>(a)] = arc.cost;
  }
  // Artificial arcs carry the initial supplies to/from the root.
  for (int i = 0; i < n; ++i) {
    const int a = m + i;
    const Value b = graph.supply(i);
    if (b >= 0) {
      tail_[static_cast<std::size_t>(a)] = i;
      head_[static_cast<std::size_t>(a)] = root_;
    } else {
      tail_[static_cast<std::size_t>(a)] = root_;
      head_[static_cast<std::size_t>(a)] = i;
    }
    cap_[static_cast<std::size_t>(a)] = artCap;
    cost_[static_cast<std::size_t>(a)] = big;
    flow_[static_cast<std::size_t>(a)] = std::abs(b);
    state_[static_cast<std::size_t>(a)] = kInTree;
  }

  parent_.assign(static_cast<std::size_t>(numNodes_), -1);
  predArc_.assign(static_cast<std::size_t>(numNodes_), -1);
  depth_.assign(static_cast<std::size_t>(numNodes_), 0);
  pi_.assign(static_cast<std::size_t>(numNodes_), 0);
  // resize+clear instead of assign: keeps the inner vectors' capacity
  // across the many same-shaped cold solves the sizer issues.
  treeAdj_.resize(static_cast<std::size_t>(numNodes_));
  for (auto& adj : treeAdj_) adj.clear();
  for (int i = 0; i < n; ++i) addTreeArc(m + i);
  refreshTree();

  basisNodes_ = n;
  basisArcs_ = m;
}

bool NetworkSimplex::initWarm(const Graph& graph) {
  const int n = graph.numNodes();
  const int m = graph.numArcs();
  if (!hasBasis_ || basisNodes_ != n || basisArcs_ != m) return false;
  for (int a = 0; a < m; ++a) {
    const Arc& arc = graph.arc(a);
    if (tail_[static_cast<std::size_t>(a)] != arc.tail ||
        head_[static_cast<std::size_t>(a)] != arc.head) {
      return false;
    }
  }

  // Refresh arc data. Artificial arcs keep the orientation chosen by the
  // cold start that created this basis; their flow recomputes below and is
  // zero in any basis that was optimal for a feasible instance.
  Value costSum = 1;
  Value positiveSupply = 0;
  for (const Arc& a : graph.arcs()) {
    assert(a.capacity >= 0);
    costSum += std::abs(a.cost);
  }
  for (int i = 0; i < n; ++i) {
    positiveSupply += std::max<Value>(graph.supply(i), 0);
  }
  const Value artCap = positiveSupply + 1;
  for (int a = 0; a < m; ++a) {
    cap_[static_cast<std::size_t>(a)] = graph.arc(a).capacity;
    cost_[static_cast<std::size_t>(a)] = graph.arc(a).cost;
  }
  for (int i = 0; i < n; ++i) {
    cap_[static_cast<std::size_t>(m + i)] = artCap;
    cost_[static_cast<std::size_t>(m + i)] = costSum;
  }

  // Non-tree arcs sit at their bound (re-evaluated for the new
  // capacities); whatever imbalance that leaves at each node must drain
  // through the old tree.
  excess_.assign(static_cast<std::size_t>(numNodes_), 0);
  for (int i = 0; i < n; ++i) {
    excess_[static_cast<std::size_t>(i)] += graph.supply(i);
  }
  for (int a = 0; a < m + n; ++a) {
    const auto ai = static_cast<std::size_t>(a);
    if (state_[ai] == kInTree) continue;
    const Value f = (state_[ai] == kAtUpper) ? cap_[ai] : 0;
    flow_[ai] = f;
    excess_[static_cast<std::size_t>(tail_[ai])] -= f;
    excess_[static_cast<std::size_t>(head_[ai])] += f;
  }

  // Rebuild parent/depth/pi for the new costs; bfsOrder_ lists parents
  // before children, so the reverse walk pushes each node's excess up its
  // unique tree arc exactly once.
  refreshTree();
  bool reoriented = false;
  for (auto it = bfsOrder_.rbegin(); it != bfsOrder_.rend(); ++it) {
    const int u = *it;
    if (u == root_) continue;
    const auto ui = static_cast<std::size_t>(u);
    const int a = predArc_[ui];
    const auto ai = static_cast<std::size_t>(a);
    Value f = (tail_[ai] == u) ? excess_[ui] : -excess_[ui];
    if (f < 0 && a >= firstArtificial_) {
      // A supply sign flipped since the basis was stored: reorient the
      // artificial root arc instead of abandoning the whole warm start.
      std::swap(tail_[ai], head_[ai]);
      f = -f;
      reoriented = true;
    }
    if (f < 0 || f > cap_[ai]) return false;  // old tree not primal feasible
    flow_[ai] = f;
    excess_[static_cast<std::size_t>(parent_[ui])] += excess_[ui];
    excess_[ui] = 0;
  }
  if (excess_[static_cast<std::size_t>(root_)] != 0) return false;
  // Reorientation changes the sign of the pi relation along those arcs;
  // recompute potentials once (flows are unaffected).
  if (reoriented) refreshTree();
  return true;
}

FlowResult NetworkSimplex::run(const Graph& graph) {
  FlowResult result;
  const int n = graph.numNodes();
  const int m = graph.numArcs();
  const int totalArcs = m + n;

  // Block pricing: scan a block of arcs, take the worst violator.
  const int blockSize =
      std::max(16, static_cast<int>(std::sqrt(static_cast<double>(totalArcs))));
  int scanFrom = 0;

  // Generous pivot cap as an anti-cycling safety net; network simplex on
  // our instances terminates orders of magnitude earlier.
  const long long maxPivots = 1000LL + 20LL * totalArcs * (n + 2);
  long long pivots = 0;

  while (true) {
    // --- pricing ---
    int entering = -1;
    Value bestViolation = 0;
    int scanned = 0;
    int idx = scanFrom;
    while (scanned < totalArcs) {
      const int blockEnd = std::min(scanned + blockSize, totalArcs);
      for (; scanned < blockEnd; ++scanned, idx = (idx + 1) % totalArcs) {
        const signed char st = state_[static_cast<std::size_t>(idx)];
        if (st == kInTree) continue;
        const Value rc = reducedCost(idx);
        const Value violation = (st == kAtLower) ? -rc : rc;
        if (violation > bestViolation) {
          bestViolation = violation;
          entering = idx;
        }
      }
      if (entering >= 0) break;  // found in this block run
    }
    if (entering < 0) break;  // optimal
    scanFrom = (entering + 1) % totalArcs;

    if (++pivots > maxPivots) {
      result.status = SolveStatus::kInfeasible;  // should never happen
      hasBasis_ = false;
      return result;
    }

    // --- ratio test along the cycle closed by `entering` ---
    // Walk both endpoints to their LCA. `forward` means flow increases on
    // the entering arc's direction of traversal.
    const bool increase =
        (state_[static_cast<std::size_t>(entering)] == kAtLower);
    int u = increase ? tail_[static_cast<std::size_t>(entering)]
                     : head_[static_cast<std::size_t>(entering)];
    int v = increase ? head_[static_cast<std::size_t>(entering)]
                     : tail_[static_cast<std::size_t>(entering)];
    // Cycle orientation: v -> ... -> lca -> ... -> u -> (entering) -> v.

    Value delta = cap_[static_cast<std::size_t>(entering)] -
                  flow_[static_cast<std::size_t>(entering)];
    if (!increase) delta = flow_[static_cast<std::size_t>(entering)];
    int leaving = entering;
    bool leavingDecreases = true;  // flow on leaving arc hits 0 vs capacity

    int uu = u;
    int vv = v;
    // Record the path arcs to apply augmentation afterwards (steps_ is a
    // member so the buffer's capacity survives across pivots and solves).
    steps_.clear();
    while (uu != vv) {
      if (depth_[static_cast<std::size_t>(uu)] >=
          depth_[static_cast<std::size_t>(vv)]) {
        const int a = predArc_[static_cast<std::size_t>(uu)];
        // The cycle pushes delta from v back to u through the tree, so on
        // u's side the path runs downward parent(uu) -> uu: flow increases
        // when the arc points down (head == uu).
        const bool down = (head_[static_cast<std::size_t>(a)] == uu);
        steps_.push_back({a, down, true});
        uu = parent_[static_cast<std::size_t>(uu)];
      } else {
        const int a = predArc_[static_cast<std::size_t>(vv)];
        // On v's side the path runs upward vv -> parent(vv): flow
        // increases when the arc points up (tail == vv).
        const bool up = (tail_[static_cast<std::size_t>(a)] == vv);
        steps_.push_back({a, up, false});
        vv = parent_[static_cast<std::size_t>(vv)];
      }
    }
    bool leavingOnUSide = false;
    for (const Step& st : steps_) {
      const auto ai = static_cast<std::size_t>(st.arc);
      const Value room = st.flowIncreases ? cap_[ai] - flow_[ai] : flow_[ai];
      if (room < delta) {
        delta = room;
        leaving = st.arc;
        leavingDecreases = !st.flowIncreases;
        leavingOnUSide = st.uSide;
      }
    }

    // --- augment ---
    {
      const auto ei = static_cast<std::size_t>(entering);
      flow_[ei] += increase ? delta : -delta;
    }
    for (const Step& st : steps_) {
      const auto ai = static_cast<std::size_t>(st.arc);
      flow_[ai] += st.flowIncreases ? delta : -delta;
    }

    // --- basis update ---
    if (leaving == entering) {
      // Entering arc swung from one bound to the other; basis unchanged.
      state_[static_cast<std::size_t>(entering)] =
          increase ? kAtUpper : kAtLower;
      continue;
    }
    state_[static_cast<std::size_t>(leaving)] =
        leavingDecreases ? kAtLower : kAtUpper;
    state_[static_cast<std::size_t>(entering)] = kInTree;
    removeTreeArc(leaving);
    addTreeArc(entering);
    // The leaving arc was found on one of the two walks; the entering
    // endpoint that started that walk lies in the component the removal
    // detached, so reattach from there.
    if (fullPivotRefresh_) {
      refreshTree();
    } else {
      reattachSubtree(entering, leavingOnUSide ? u : v);
    }
  }

  // Any residual flow on artificial arcs means the supplies cannot be
  // routed through the real network.
  for (int i = 0; i < n; ++i) {
    if (flow_[static_cast<std::size_t>(m + i)] != 0) {
      result.status = SolveStatus::kInfeasible;
      hasBasis_ = false;
      return result;
    }
  }

  result.status = SolveStatus::kOptimal;
  hasBasis_ = true;
  result.arcFlow.resize(static_cast<std::size_t>(m));
  for (int a = 0; a < m; ++a) {
    result.arcFlow[static_cast<std::size_t>(a)] =
        flow_[static_cast<std::size_t>(a)];
    result.totalCost += flow_[static_cast<std::size_t>(a)] *
                        graph.arc(a).cost;
  }
  result.nodePotential.assign(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    result.nodePotential[static_cast<std::size_t>(i)] =
        pi_[static_cast<std::size_t>(i)];
  }
  return result;
}

FlowResult NetworkSimplex::solve(const Graph& graph) {
  lastWarm_ = false;
  if (graph.totalSupply() != 0) {
    hasBasis_ = false;
    FlowResult result;
    result.status = SolveStatus::kInfeasible;
    return result;
  }
  initCold(graph);
  return run(graph);
}

FlowResult NetworkSimplex::resolve(const Graph& graph) {
  if (graph.totalSupply() != 0) {
    hasBasis_ = false;
    lastWarm_ = false;
    FlowResult result;
    result.status = SolveStatus::kInfeasible;
    return result;
  }
  lastWarm_ = initWarm(graph);
  if (!lastWarm_) initCold(graph);
  return run(graph);
}

}  // namespace ofl::mcf
