#include "mcf/network_simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace ofl::mcf {
namespace {

enum ArcState : signed char { kAtLower = -1, kInTree = 0, kAtUpper = 1 };

struct Solver {
  // Arc arrays (original arcs first, then one artificial arc per node).
  std::vector<int> tail;
  std::vector<int> head;
  std::vector<Value> cap;
  std::vector<Value> cost;
  std::vector<Value> flow;
  std::vector<signed char> state;

  // Spanning-tree structure.
  int numNodes = 0;   // including root
  int root = 0;
  std::vector<int> parent;
  std::vector<int> predArc;
  std::vector<int> depth;
  std::vector<Value> pi;
  std::vector<std::vector<int>> treeAdj;  // node -> incident tree arc ids

  int firstArtificial = 0;

  Value reducedCost(int a) const {
    return cost[a] - pi[tail[a]] + pi[head[a]];
  }

  // Rebuilds parent/depth/potential from the root over current tree arcs.
  void refreshTree() {
    std::vector<int> stack{root};
    std::vector<char> visited(static_cast<std::size_t>(numNodes), 0);
    parent[root] = -1;
    predArc[root] = -1;
    depth[root] = 0;
    visited[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (int a : treeAdj[static_cast<std::size_t>(u)]) {
        const int v = (tail[a] == u) ? head[a] : tail[a];
        if (visited[static_cast<std::size_t>(v)]) continue;
        visited[static_cast<std::size_t>(v)] = 1;
        parent[v] = u;
        predArc[v] = a;
        depth[v] = depth[u] + 1;
        // Tree arcs have zero reduced cost: cost - pi[tail] + pi[head] = 0,
        // i.e. pi[head] = pi[tail] - cost.
        if (tail[a] == u) {
          pi[v] = pi[u] - cost[a];   // v == head
        } else {
          pi[v] = pi[u] + cost[a];   // v == tail
        }
        stack.push_back(v);
      }
    }
  }

  void removeTreeArc(int a) {
    for (int endpoint : {tail[a], head[a]}) {
      auto& adj = treeAdj[static_cast<std::size_t>(endpoint)];
      adj.erase(std::find(adj.begin(), adj.end(), a));
    }
  }

  void addTreeArc(int a) {
    treeAdj[static_cast<std::size_t>(tail[a])].push_back(a);
    treeAdj[static_cast<std::size_t>(head[a])].push_back(a);
  }
};

}  // namespace

FlowResult NetworkSimplex::solve(const Graph& graph) {
  FlowResult result;
  if (graph.totalSupply() != 0) {
    result.status = SolveStatus::kInfeasible;
    return result;
  }

  const int n = graph.numNodes();
  const int m = graph.numArcs();

  Solver s;
  s.numNodes = n + 1;
  s.root = n;
  s.firstArtificial = m;

  Value costSum = 1;
  Value positiveSupply = 0;
  for (const Arc& a : graph.arcs()) {
    assert(a.capacity >= 0);
    costSum += std::abs(a.cost);
  }
  for (int i = 0; i < n; ++i) {
    positiveSupply += std::max<Value>(graph.supply(i), 0);
  }
  const Value big = costSum;  // dominates any simple-path cost
  const Value artCap = positiveSupply + 1;

  const int totalArcs = m + n;
  s.tail.resize(static_cast<std::size_t>(totalArcs));
  s.head.resize(static_cast<std::size_t>(totalArcs));
  s.cap.resize(static_cast<std::size_t>(totalArcs));
  s.cost.resize(static_cast<std::size_t>(totalArcs));
  s.flow.assign(static_cast<std::size_t>(totalArcs), 0);
  s.state.assign(static_cast<std::size_t>(totalArcs), kAtLower);

  for (int a = 0; a < m; ++a) {
    const Arc& arc = graph.arc(a);
    s.tail[static_cast<std::size_t>(a)] = arc.tail;
    s.head[static_cast<std::size_t>(a)] = arc.head;
    s.cap[static_cast<std::size_t>(a)] = arc.capacity;
    s.cost[static_cast<std::size_t>(a)] = arc.cost;
  }
  // Artificial arcs carry the initial supplies to/from the root.
  for (int i = 0; i < n; ++i) {
    const int a = m + i;
    const Value b = graph.supply(i);
    if (b >= 0) {
      s.tail[static_cast<std::size_t>(a)] = i;
      s.head[static_cast<std::size_t>(a)] = s.root;
    } else {
      s.tail[static_cast<std::size_t>(a)] = s.root;
      s.head[static_cast<std::size_t>(a)] = i;
    }
    s.cap[static_cast<std::size_t>(a)] = artCap;
    s.cost[static_cast<std::size_t>(a)] = big;
    s.flow[static_cast<std::size_t>(a)] = std::abs(b);
    s.state[static_cast<std::size_t>(a)] = kInTree;
  }

  s.parent.assign(static_cast<std::size_t>(s.numNodes), -1);
  s.predArc.assign(static_cast<std::size_t>(s.numNodes), -1);
  s.depth.assign(static_cast<std::size_t>(s.numNodes), 0);
  s.pi.assign(static_cast<std::size_t>(s.numNodes), 0);
  s.treeAdj.assign(static_cast<std::size_t>(s.numNodes), {});
  for (int i = 0; i < n; ++i) s.addTreeArc(m + i);
  s.refreshTree();

  // Block pricing: scan a block of arcs, take the worst violator.
  const int blockSize =
      std::max(16, static_cast<int>(std::sqrt(static_cast<double>(totalArcs))));
  int scanFrom = 0;

  // Generous pivot cap as an anti-cycling safety net; network simplex on
  // our instances terminates orders of magnitude earlier.
  const long long maxPivots = 1000LL + 20LL * totalArcs * (n + 2);
  long long pivots = 0;

  while (true) {
    // --- pricing ---
    int entering = -1;
    Value bestViolation = 0;
    int scanned = 0;
    int idx = scanFrom;
    while (scanned < totalArcs) {
      const int blockEnd = std::min(scanned + blockSize, totalArcs);
      for (; scanned < blockEnd; ++scanned, idx = (idx + 1) % totalArcs) {
        const signed char st = s.state[static_cast<std::size_t>(idx)];
        if (st == kInTree) continue;
        const Value rc = s.reducedCost(idx);
        const Value violation = (st == kAtLower) ? -rc : rc;
        if (violation > bestViolation) {
          bestViolation = violation;
          entering = idx;
        }
      }
      if (entering >= 0) break;  // found in this block run
    }
    if (entering < 0) break;  // optimal
    scanFrom = (entering + 1) % totalArcs;

    if (++pivots > maxPivots) {
      result.status = SolveStatus::kInfeasible;  // should never happen
      return result;
    }

    // --- ratio test along the cycle closed by `entering` ---
    // Walk both endpoints to their LCA. `forward` means flow increases on
    // the entering arc's direction of traversal.
    const bool increase = (s.state[static_cast<std::size_t>(entering)] == kAtLower);
    int u = increase ? s.tail[static_cast<std::size_t>(entering)]
                     : s.head[static_cast<std::size_t>(entering)];
    int v = increase ? s.head[static_cast<std::size_t>(entering)]
                     : s.tail[static_cast<std::size_t>(entering)];
    // Cycle orientation: v -> ... -> lca -> ... -> u -> (entering) -> v.

    Value delta = s.cap[static_cast<std::size_t>(entering)] -
                  s.flow[static_cast<std::size_t>(entering)];
    if (!increase) delta = s.flow[static_cast<std::size_t>(entering)];
    int leaving = entering;
    bool leavingOnUSide = false;   // which walk found the blocking arc
    bool leavingDecreases = true;  // flow on leaving arc hits 0 vs capacity

    int uu = u;
    int vv = v;
    // Record the path arcs to apply augmentation afterwards.
    struct Step {
      int arc;
      bool flowIncreases;
      bool onUSide;
    };
    std::vector<Step> steps;
    while (uu != vv) {
      if (s.depth[uu] >= s.depth[vv]) {
        const int a = s.predArc[uu];
        // The cycle pushes delta from v back to u through the tree, so on
        // u's side the path runs downward parent(uu) -> uu: flow increases
        // when the arc points down (head == uu).
        const bool down = (s.head[static_cast<std::size_t>(a)] == uu);
        steps.push_back({a, down, true});
        uu = s.parent[uu];
      } else {
        const int a = s.predArc[vv];
        // On v's side the path runs upward vv -> parent(vv): flow
        // increases when the arc points up (tail == vv).
        const bool up = (s.tail[static_cast<std::size_t>(a)] == vv);
        steps.push_back({a, up, false});
        vv = s.parent[vv];
      }
    }
    for (const Step& st : steps) {
      const auto ai = static_cast<std::size_t>(st.arc);
      const Value room = st.flowIncreases ? s.cap[ai] - s.flow[ai] : s.flow[ai];
      if (room < delta) {
        delta = room;
        leaving = st.arc;
        leavingOnUSide = st.onUSide;
        leavingDecreases = !st.flowIncreases;
      }
    }

    // --- augment ---
    {
      const auto ei = static_cast<std::size_t>(entering);
      s.flow[ei] += increase ? delta : -delta;
    }
    for (const Step& st : steps) {
      const auto ai = static_cast<std::size_t>(st.arc);
      s.flow[ai] += st.flowIncreases ? delta : -delta;
    }

    // --- basis update ---
    if (leaving == entering) {
      // Entering arc swung from one bound to the other; basis unchanged.
      s.state[static_cast<std::size_t>(entering)] =
          increase ? kAtUpper : kAtLower;
      continue;
    }
    s.state[static_cast<std::size_t>(leaving)] =
        leavingDecreases ? kAtLower : kAtUpper;
    s.state[static_cast<std::size_t>(entering)] = kInTree;
    s.removeTreeArc(leaving);
    s.addTreeArc(entering);
    s.refreshTree();
    (void)leavingOnUSide;
  }

  // Any residual flow on artificial arcs means the supplies cannot be
  // routed through the real network.
  for (int i = 0; i < n; ++i) {
    if (s.flow[static_cast<std::size_t>(m + i)] != 0) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }
  }

  result.status = SolveStatus::kOptimal;
  result.arcFlow.resize(static_cast<std::size_t>(m));
  for (int a = 0; a < m; ++a) {
    result.arcFlow[static_cast<std::size_t>(a)] =
        s.flow[static_cast<std::size_t>(a)];
    result.totalCost += s.flow[static_cast<std::size_t>(a)] *
                        graph.arc(a).cost;
  }
  // Normalize potentials so the root's real-network component is natural:
  // report pi relative to node 0 when it exists.
  result.nodePotential.assign(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    result.nodePotential[static_cast<std::size_t>(i)] = s.pi[i];
  }
  return result;
}

}  // namespace ofl::mcf
