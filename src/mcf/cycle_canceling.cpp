#include "mcf/cycle_canceling.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

namespace ofl::mcf {
namespace {

constexpr Value kInf = std::numeric_limits<Value>::max() / 4;

// Residual arc-pair representation shared by both phases. Residual id 2a
// is original arc a forward; 2a+1 its reverse. Arcs appended later (super
// source/sink) follow the same scheme.
struct Residual {
  std::vector<int> from;
  std::vector<int> to;
  std::vector<Value> cap;   // remaining residual capacity
  std::vector<Value> cost;
  std::vector<std::vector<int>> adjacency;

  int addArcPair(int u, int v, Value capacity, Value arcCost) {
    const int id = static_cast<int>(from.size());
    from.push_back(u);
    to.push_back(v);
    cap.push_back(capacity);
    cost.push_back(arcCost);
    from.push_back(v);
    to.push_back(u);
    cap.push_back(0);
    cost.push_back(-arcCost);
    adjacency[static_cast<std::size_t>(u)].push_back(id);
    adjacency[static_cast<std::size_t>(v)].push_back(id + 1);
    return id;
  }

  void push(int id, Value amount) {
    cap[static_cast<std::size_t>(id)] -= amount;
    cap[static_cast<std::size_t>(id ^ 1)] += amount;
  }
};

// Edmonds-Karp augmentation from s to t; returns total flow placed.
Value maxFlow(Residual& g, int s, int t) {
  Value total = 0;
  const int n = static_cast<int>(g.adjacency.size());
  std::vector<int> predArc(static_cast<std::size_t>(n));
  while (true) {
    std::fill(predArc.begin(), predArc.end(), -1);
    std::queue<int> queue;
    queue.push(s);
    predArc[static_cast<std::size_t>(s)] = -2;
    while (!queue.empty() && predArc[static_cast<std::size_t>(t)] == -1) {
      const int u = queue.front();
      queue.pop();
      for (const int id : g.adjacency[static_cast<std::size_t>(u)]) {
        const int v = g.to[static_cast<std::size_t>(id)];
        if (g.cap[static_cast<std::size_t>(id)] > 0 &&
            predArc[static_cast<std::size_t>(v)] == -1) {
          predArc[static_cast<std::size_t>(v)] = id;
          queue.push(v);
        }
      }
    }
    if (predArc[static_cast<std::size_t>(t)] == -1) break;
    Value bottleneck = kInf;
    for (int v = t; v != s;) {
      const int id = predArc[static_cast<std::size_t>(v)];
      bottleneck = std::min(bottleneck, g.cap[static_cast<std::size_t>(id)]);
      v = g.from[static_cast<std::size_t>(id)];
    }
    for (int v = t; v != s;) {
      const int id = predArc[static_cast<std::size_t>(v)];
      g.push(id, bottleneck);
      v = g.from[static_cast<std::size_t>(id)];
    }
    total += bottleneck;
  }
  return total;
}

}  // namespace

FlowResult CycleCanceling::solve(const Graph& graph) {
  FlowResult result;
  if (graph.totalSupply() != 0) {
    result.status = SolveStatus::kInfeasible;
    return result;
  }
  const int n = graph.numNodes();
  const int m = graph.numArcs();

  Residual g;
  g.adjacency.resize(static_cast<std::size_t>(n) + 2);
  for (int a = 0; a < m; ++a) {
    const Arc& arc = graph.arc(a);
    g.addArcPair(arc.tail, arc.head, arc.capacity, arc.cost);
  }

  // Phase 1: feasibility via super source (n) / super sink (n+1).
  const int superSource = n;
  const int superSink = n + 1;
  Value required = 0;
  for (int i = 0; i < n; ++i) {
    const Value b = graph.supply(i);
    if (b > 0) {
      g.addArcPair(superSource, i, b, 0);
      required += b;
    } else if (b < 0) {
      g.addArcPair(i, superSink, -b, 0);
    }
  }
  if (maxFlow(g, superSource, superSink) != required) {
    result.status = SolveStatus::kInfeasible;
    return result;
  }

  // Phase 2: cancel negative residual cycles (Bellman-Ford with parent
  // walk-back; the standard "label correcting + cycle detection" loop).
  const int total = n + 2;
  std::vector<Value> dist(static_cast<std::size_t>(total));
  std::vector<int> pred(static_cast<std::size_t>(total));
  while (true) {
    std::fill(dist.begin(), dist.end(), 0);  // virtual root to all nodes
    std::fill(pred.begin(), pred.end(), -1);
    int touched = -1;
    for (int round = 0; round < total; ++round) {
      touched = -1;
      for (int id = 0; id < static_cast<int>(g.from.size()); ++id) {
        if (g.cap[static_cast<std::size_t>(id)] <= 0) continue;
        const int u = g.from[static_cast<std::size_t>(id)];
        const int v = g.to[static_cast<std::size_t>(id)];
        if (dist[static_cast<std::size_t>(u)] +
                g.cost[static_cast<std::size_t>(id)] <
            dist[static_cast<std::size_t>(v)]) {
          dist[static_cast<std::size_t>(v)] =
              dist[static_cast<std::size_t>(u)] +
              g.cost[static_cast<std::size_t>(id)];
          pred[static_cast<std::size_t>(v)] = id;
          touched = v;
        }
      }
      if (touched < 0) break;
    }
    if (touched < 0) break;  // no negative cycle left: optimal

    // Walk back `total` steps to land inside the cycle, then collect it.
    int inCycle = touched;
    for (int k = 0; k < total; ++k) {
      inCycle = g.from[static_cast<std::size_t>(
          pred[static_cast<std::size_t>(inCycle)])];
    }
    std::vector<int> cycleArcs;
    Value bottleneck = kInf;
    for (int v = inCycle;;) {
      const int id = pred[static_cast<std::size_t>(v)];
      cycleArcs.push_back(id);
      bottleneck = std::min(bottleneck, g.cap[static_cast<std::size_t>(id)]);
      v = g.from[static_cast<std::size_t>(id)];
      if (v == inCycle) break;
    }
    for (const int id : cycleArcs) g.push(id, bottleneck);
  }

  result.status = SolveStatus::kOptimal;
  result.arcFlow.resize(static_cast<std::size_t>(m));
  for (int a = 0; a < m; ++a) {
    const Value f = g.cap[static_cast<std::size_t>(2 * a + 1)];
    result.arcFlow[static_cast<std::size_t>(a)] = f;
    result.totalCost += f * graph.arc(a).cost;
  }
  // Potentials: shortest distances in the final residual graph satisfy
  // dist[v] <= dist[u] + cost(u,v) on residual arcs, i.e. the FlowResult
  // reduced-cost convention with pi = -dist.
  std::fill(dist.begin(), dist.end(), 0);
  for (int round = 0; round < total; ++round) {
    bool changed = false;
    for (int id = 0; id < static_cast<int>(g.from.size()); ++id) {
      if (g.cap[static_cast<std::size_t>(id)] <= 0) continue;
      const int u = g.from[static_cast<std::size_t>(id)];
      const int v = g.to[static_cast<std::size_t>(id)];
      if (dist[static_cast<std::size_t>(u)] +
              g.cost[static_cast<std::size_t>(id)] <
          dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] =
            dist[static_cast<std::size_t>(u)] +
            g.cost[static_cast<std::size_t>(id)];
        changed = true;
      }
    }
    if (!changed) break;
  }
  result.nodePotential.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    result.nodePotential[static_cast<std::size_t>(i)] =
        -dist[static_cast<std::size_t>(i)];
  }
  return result;
}

}  // namespace ofl::mcf
