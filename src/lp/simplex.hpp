// Dense bounded-variable primal simplex with Big-M artificials.
//
// Deliberately simple: a full tableau updated per pivot. The fill problem
// instances this library solves with it (tile-baseline LPs, per-window
// sizing relaxations) have at most a few thousand variables and a few
// hundred rows, where a dense tableau is both fast enough and far easier
// to make robust than a revised implementation.
#pragma once

#include <vector>

#include "lp/model.hpp"

namespace ofl::lp {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  std::vector<double> x;
  double objective = 0.0;
  int iterations = 0;
};

class SimplexSolver {
 public:
  struct Options {
    int maxIterations = 200000;
    double tolerance = 1e-7;
  };

  SimplexSolver() = default;
  explicit SimplexSolver(Options options) : options_(options) {}

  LpResult solve(const LpModel& model) const;

 private:
  Options options_{};
};

}  // namespace ofl::lp
