#include "lp/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ofl::lp {
namespace {

enum VarStatus : signed char { kBasic = 0, kAtLower = 1, kAtUpper = 2 };

// Internal standard form after shifting x' = x - l:
//   min c'x'  s.t.  T x' = b,  0 <= x' <= u-l,
// where T includes slack, surplus and artificial columns.
struct Tableau {
  int rows = 0;
  int cols = 0;  // structural + slack/surplus + artificial
  std::vector<double> a;     // rows x cols, row-major (kept as B^-1 A)
  std::vector<double> b;     // basic variable values
  std::vector<double> cost;
  std::vector<double> ub;    // shifted upper bounds
  std::vector<int> basis;    // per row: basic column
  std::vector<signed char> status;

  double& at(int r, int c) { return a[static_cast<std::size_t>(r) * cols + c]; }
  double at(int r, int c) const {
    return a[static_cast<std::size_t>(r) * cols + c];
  }
};

}  // namespace

LpResult SimplexSolver::solve(const LpModel& model) const {
  LpResult result;
  const int n = model.numVariables();
  const int m = model.numConstraints();
  const double eps = options_.tolerance;

  // --- Build the shifted standard form ---
  // Row RHS after substituting the lower bounds, then normalized to >= 0.
  std::vector<double> rhs(static_cast<std::size_t>(m));
  std::vector<double> rowSign(static_cast<std::size_t>(m), 1.0);
  for (int r = 0; r < m; ++r) {
    const Constraint& c = model.constraint(r);
    double shifted = c.rhs;
    for (const auto& [v, coeff] : c.terms) shifted -= coeff * model.lower(v);
    rhs[static_cast<std::size_t>(r)] = shifted;
  }

  // Column layout: [0, n) structural, then per-row slack/surplus, then
  // per-row artificial where needed.
  Tableau t;
  t.rows = m;
  int cols = n;
  std::vector<int> slackCol(static_cast<std::size_t>(m), -1);
  std::vector<int> artCol(static_cast<std::size_t>(m), -1);
  for (int r = 0; r < m; ++r) {
    Sense sense = model.constraint(r).sense;
    if (rhs[static_cast<std::size_t>(r)] < 0) {
      rowSign[static_cast<std::size_t>(r)] = -1.0;
      rhs[static_cast<std::size_t>(r)] = -rhs[static_cast<std::size_t>(r)];
      if (sense == Sense::kLessEqual) {
        sense = Sense::kGreaterEqual;
      } else if (sense == Sense::kGreaterEqual) {
        sense = Sense::kLessEqual;
      }
    }
    if (sense != Sense::kEqual) slackCol[static_cast<std::size_t>(r)] = cols++;
    // >= rows need an artificial (their surplus column is -1); = rows too.
    if (sense != Sense::kLessEqual) artCol[static_cast<std::size_t>(r)] = cols++;
    // Stash the effective sense via the slack coefficient sign below.
  }
  t.cols = cols;
  t.a.assign(static_cast<std::size_t>(m) * cols, 0.0);
  t.b = rhs;
  t.cost.assign(static_cast<std::size_t>(cols), 0.0);
  t.ub.assign(static_cast<std::size_t>(cols), kInfinity);
  t.status.assign(static_cast<std::size_t>(cols), kAtLower);
  t.basis.assign(static_cast<std::size_t>(m), -1);

  double costScale = 1.0;
  for (int v = 0; v < n; ++v) {
    costScale = std::max(costScale, std::abs(model.cost(v)));
  }
  const double bigM = 1e7 * costScale;

  for (int v = 0; v < n; ++v) {
    t.cost[static_cast<std::size_t>(v)] = model.cost(v);
    t.ub[static_cast<std::size_t>(v)] =
        model.upper(v) >= kInfinity ? kInfinity
                                    : model.upper(v) - model.lower(v);
  }
  for (int r = 0; r < m; ++r) {
    const Constraint& c = model.constraint(r);
    for (const auto& [v, coeff] : c.terms) {
      t.at(r, v) += rowSign[static_cast<std::size_t>(r)] * coeff;
    }
    Sense sense = c.sense;
    if (rowSign[static_cast<std::size_t>(r)] < 0) {
      if (sense == Sense::kLessEqual) sense = Sense::kGreaterEqual;
      else if (sense == Sense::kGreaterEqual) sense = Sense::kLessEqual;
    }
    const int sc = slackCol[static_cast<std::size_t>(r)];
    const int ac = artCol[static_cast<std::size_t>(r)];
    if (sense == Sense::kLessEqual) {
      t.at(r, sc) = 1.0;
      t.basis[static_cast<std::size_t>(r)] = sc;
      t.status[static_cast<std::size_t>(sc)] = kBasic;
    } else if (sense == Sense::kGreaterEqual) {
      t.at(r, sc) = -1.0;
      t.at(r, ac) = 1.0;
      t.cost[static_cast<std::size_t>(ac)] = bigM;
      t.basis[static_cast<std::size_t>(r)] = ac;
      t.status[static_cast<std::size_t>(ac)] = kBasic;
    } else {  // equality
      t.at(r, ac) = 1.0;
      t.cost[static_cast<std::size_t>(ac)] = bigM;
      t.basis[static_cast<std::size_t>(r)] = ac;
      t.status[static_cast<std::size_t>(ac)] = kBasic;
    }
  }

  // Dual values y' = c_B' B^-1, maintained implicitly through the reduced
  // cost row, updated per pivot like the tableau body.
  std::vector<double> reduced(t.cost);
  // reduced_j = c_j - c_B' (B^-1 A)_j ; initially B = I on slack/artificial
  // columns, so subtract basic costs times rows.
  for (int r = 0; r < m; ++r) {
    const int bc = t.basis[static_cast<std::size_t>(r)];
    const double cb = t.cost[static_cast<std::size_t>(bc)];
    if (cb == 0.0) continue;
    for (int j = 0; j < t.cols; ++j) {
      reduced[static_cast<std::size_t>(j)] -= cb * t.at(r, j);
    }
  }

  int iterations = 0;
  while (iterations < options_.maxIterations) {
    // --- pricing (Dantzig with bound-direction awareness) ---
    int entering = -1;
    double bestScore = eps;
    bool enteringIncreases = true;
    for (int j = 0; j < t.cols; ++j) {
      const signed char st = t.status[static_cast<std::size_t>(j)];
      if (st == kBasic) continue;
      const double d = reduced[static_cast<std::size_t>(j)];
      if (st == kAtLower && -d > bestScore) {
        bestScore = -d;
        entering = j;
        enteringIncreases = true;
      } else if (st == kAtUpper && d > bestScore) {
        bestScore = d;
        entering = j;
        enteringIncreases = false;
      }
    }
    if (entering < 0) break;  // optimal
    ++iterations;

    // --- ratio test ---
    // Entering moves by `delta` (increase from lower or decrease from
    // upper). Basic variable x_B(r) changes by -dir * a_r,entering * delta.
    const double dir = enteringIncreases ? 1.0 : -1.0;
    double delta = t.ub[static_cast<std::size_t>(entering)];  // bound flip cap
    int leavingRow = -1;
    bool leavingToUpper = false;
    for (int r = 0; r < m; ++r) {
      const double coeff = dir * t.at(r, entering);
      if (coeff > eps) {
        // basic decreases toward 0
        const double ratio = t.b[static_cast<std::size_t>(r)] / coeff;
        if (ratio < delta - eps) {
          delta = std::max(ratio, 0.0);
          leavingRow = r;
          leavingToUpper = false;
        }
      } else if (coeff < -eps) {
        // basic increases toward its upper bound
        const int bc = t.basis[static_cast<std::size_t>(r)];
        const double bu = t.ub[static_cast<std::size_t>(bc)];
        if (bu >= kInfinity) continue;
        const double ratio =
            (bu - t.b[static_cast<std::size_t>(r)]) / (-coeff);
        if (ratio < delta - eps) {
          delta = std::max(ratio, 0.0);
          leavingRow = r;
          leavingToUpper = true;
        }
      }
    }
    if (delta >= kInfinity) {
      result.status = LpStatus::kUnbounded;
      return result;
    }

    if (leavingRow < 0) {
      // Pure bound flip of the entering variable.
      for (int r = 0; r < m; ++r) {
        t.b[static_cast<std::size_t>(r)] -= dir * t.at(r, entering) * delta;
      }
      t.status[static_cast<std::size_t>(entering)] =
          enteringIncreases ? kAtUpper : kAtLower;
      continue;
    }

    // --- pivot on (leavingRow, entering) ---
    // First move the solution point.
    for (int r = 0; r < m; ++r) {
      t.b[static_cast<std::size_t>(r)] -= dir * t.at(r, entering) * delta;
    }
    const int leavingCol = t.basis[static_cast<std::size_t>(leavingRow)];
    t.status[static_cast<std::size_t>(leavingCol)] =
        leavingToUpper ? kAtUpper : kAtLower;
    // Entering's basic value: distance moved from its active bound,
    // expressed from the lower bound.
    const double enteringValue =
        enteringIncreases ? delta
                          : t.ub[static_cast<std::size_t>(entering)] - delta;
    t.status[static_cast<std::size_t>(entering)] = kBasic;
    t.basis[static_cast<std::size_t>(leavingRow)] = entering;

    const double pivot = t.at(leavingRow, entering);
    assert(std::abs(pivot) > eps * 1e-3);
    const double invPivot = 1.0 / pivot;
    for (int j = 0; j < t.cols; ++j) t.at(leavingRow, j) *= invPivot;
    // The leaving row's b currently holds the leaving variable's new basic
    // value (0 or ub); replace with the entering variable's value.
    t.b[static_cast<std::size_t>(leavingRow)] = enteringValue;
    for (int r = 0; r < m; ++r) {
      if (r == leavingRow) continue;
      const double factor = t.at(r, entering);
      if (factor == 0.0) continue;
      for (int j = 0; j < t.cols; ++j) {
        t.at(r, j) -= factor * t.at(leavingRow, j);
      }
    }
    const double redFactor = reduced[static_cast<std::size_t>(entering)];
    if (redFactor != 0.0) {
      for (int j = 0; j < t.cols; ++j) {
        reduced[static_cast<std::size_t>(j)] -=
            redFactor * t.at(leavingRow, j);
      }
    }
  }

  result.iterations = iterations;
  if (iterations >= options_.maxIterations) {
    result.status = LpStatus::kIterationLimit;
    return result;
  }

  // Recover x: basic values + nonbasic bounds, then unshift.
  std::vector<double> shifted(static_cast<std::size_t>(t.cols), 0.0);
  for (int j = 0; j < t.cols; ++j) {
    if (t.status[static_cast<std::size_t>(j)] == kAtUpper) {
      shifted[static_cast<std::size_t>(j)] = t.ub[static_cast<std::size_t>(j)];
    }
  }
  for (int r = 0; r < m; ++r) {
    shifted[static_cast<std::size_t>(t.basis[static_cast<std::size_t>(r)])] =
        t.b[static_cast<std::size_t>(r)];
  }
  // Artificials must be zero for feasibility.
  for (int r = 0; r < m; ++r) {
    const int ac = artCol[static_cast<std::size_t>(r)];
    if (ac >= 0 && shifted[static_cast<std::size_t>(ac)] > 1e-5) {
      result.status = LpStatus::kInfeasible;
      return result;
    }
  }

  result.x.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    result.x[static_cast<std::size_t>(v)] =
        shifted[static_cast<std::size_t>(v)] + model.lower(v);
  }
  result.objective = model.objective(result.x);
  result.status = LpStatus::kOptimal;
  return result;
}

}  // namespace ofl::lp
