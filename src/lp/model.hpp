// Generic linear program container.
//
//   min  c' x
//   s.t. sum_j a_ij x_j  {<=, =, >=}  b_i
//        l <= x <= u  (u may be +infinity)
//
// Used by the tile-based LP baseline (Kahng et al. [4]-style min-variation
// fill) and by the ILP-relaxation ablation of the sizing stage.
#pragma once

#include <limits>
#include <utility>
#include <vector>

namespace ofl::lp {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense { kLessEqual, kEqual, kGreaterEqual };

struct Constraint {
  std::vector<std::pair<int, double>> terms;  // (variable, coefficient)
  Sense sense = Sense::kLessEqual;
  double rhs = 0.0;
};

class LpModel {
 public:
  /// Adds a variable; returns its index.
  int addVariable(double cost, double lower = 0.0, double upper = kInfinity);

  void addConstraint(std::vector<std::pair<int, double>> terms, Sense sense,
                     double rhs);

  int numVariables() const { return static_cast<int>(costs_.size()); }
  int numConstraints() const { return static_cast<int>(constraints_.size()); }

  double cost(int v) const { return costs_[static_cast<std::size_t>(v)]; }
  double lower(int v) const { return lowers_[static_cast<std::size_t>(v)]; }
  double upper(int v) const { return uppers_[static_cast<std::size_t>(v)]; }
  const Constraint& constraint(int c) const {
    return constraints_[static_cast<std::size_t>(c)];
  }

  double objective(const std::vector<double>& x) const;

  /// Max constraint violation plus max bound violation of `x` (0 = feasible).
  double infeasibility(const std::vector<double>& x) const;

 private:
  std::vector<double> costs_;
  std::vector<double> lowers_;
  std::vector<double> uppers_;
  std::vector<Constraint> constraints_;
};

}  // namespace ofl::lp
