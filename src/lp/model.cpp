#include "lp/model.hpp"

#include <algorithm>
#include <cassert>

namespace ofl::lp {

int LpModel::addVariable(double cost, double lower, double upper) {
  assert(lower <= upper);
  costs_.push_back(cost);
  lowers_.push_back(lower);
  uppers_.push_back(upper);
  return numVariables() - 1;
}

void LpModel::addConstraint(std::vector<std::pair<int, double>> terms,
                            Sense sense, double rhs) {
  for ([[maybe_unused]] const auto& [v, coeff] : terms) {
    assert(v >= 0 && v < numVariables());
  }
  constraints_.push_back({std::move(terms), sense, rhs});
}

double LpModel::objective(const std::vector<double>& x) const {
  double obj = 0.0;
  for (int v = 0; v < numVariables(); ++v) {
    obj += cost(v) * x[static_cast<std::size_t>(v)];
  }
  return obj;
}

double LpModel::infeasibility(const std::vector<double>& x) const {
  double worst = 0.0;
  for (int v = 0; v < numVariables(); ++v) {
    const double xv = x[static_cast<std::size_t>(v)];
    worst = std::max(worst, lower(v) - xv);
    if (upper(v) < kInfinity) worst = std::max(worst, xv - upper(v));
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const auto& [v, coeff] : c.terms) {
      lhs += coeff * x[static_cast<std::size_t>(v)];
    }
    switch (c.sense) {
      case Sense::kLessEqual: worst = std::max(worst, lhs - c.rhs); break;
      case Sense::kGreaterEqual: worst = std::max(worst, c.rhs - lhs); break;
      case Sense::kEqual: worst = std::max(worst, std::abs(lhs - c.rhs)); break;
    }
  }
  return worst;
}

}  // namespace ofl::lp
