// Greedy max-fill baseline.
//
// Fills every window up to a global target with the largest available
// rectangles, overlay-blind. Few large fills give an excellent file-size
// score, but no overlay control and cruder density matching — the
// "aggressive size score, weaker quality" profile of Table 3's 1st-team
// row.
#pragma once

#include "baselines/filler.hpp"
#include "layout/design_rules.hpp"

namespace ofl::baselines {

class GreedyFiller : public Filler {
 public:
  struct Options {
    geom::Coord windowSize = 2000;
    layout::DesignRules rules;
    /// Target headroom: fill to headroom * max wire density (>= 1 fills
    /// everything it can toward the global peak).
    double headroom = 1.0;
  };

  explicit GreedyFiller(Options options) : options_(options) {}

  std::string name() const override { return "greedy"; }
  void fill(layout::Layout& layout) override;

 private:
  Options options_;
};

}  // namespace ofl::baselines
