#include "baselines/greedy_filler.hpp"

#include <algorithm>

#include "density/density_map.hpp"
#include "fill/candidate_generator.hpp"
#include "layout/fill_region.hpp"

namespace ofl::baselines {

void GreedyFiller::fill(layout::Layout& layout) {
  layout.clearFills();
  const layout::WindowGrid grid(layout.die(), options_.windowSize);
  // Big fills: let candidates grow to half a window.
  layout::DesignRules bigRules = options_.rules;
  bigRules.maxFillSize =
      std::max(options_.rules.maxFillSize, options_.windowSize / 2);
  const fill::CandidateGenerator slicer(bigRules, {});

  for (int l = 0; l < layout.numLayers(); ++l) {
    const auto regions =
        layout::computeFillRegions(layout, l, grid, options_.rules);
    const density::DensityMap wires =
        density::DensityMap::computeFromShapes(layout.layer(l).wires, grid);

    double td = 0.0;
    for (double v : wires.values()) td = std::max(td, v);
    td *= options_.headroom;

    for (int j = 0; j < grid.rows(); ++j) {
      for (int i = 0; i < grid.cols(); ++i) {
        const auto w = static_cast<std::size_t>(grid.flatIndex(i, j));
        const auto windowArea =
            static_cast<double>(grid.windowRect(i, j).area());
        double need = (td - wires.at(i, j)) * windowArea;
        if (need <= 0) continue;
        std::vector<geom::Rect> cells = slicer.sliceRegion(regions[w]);
        std::sort(cells.begin(), cells.end(),
                  [](const geom::Rect& a, const geom::Rect& b) {
                    if (a.area() != b.area()) return a.area() > b.area();
                    return geom::RectYXLess{}(a, b);
                  });
        for (const geom::Rect& c : cells) {
          if (need <= 0) break;
          // Taking a cell much larger than the remaining need would
          // overshoot the target; skip to smaller cells instead.
          if (static_cast<double>(c.area()) > 1.25 * need) continue;
          layout.layer(l).fills.push_back(c);
          need -= static_cast<double>(c.area());
        }
      }
    }
  }
}

}  // namespace ofl::baselines
