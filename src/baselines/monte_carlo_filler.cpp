#include "baselines/monte_carlo_filler.hpp"

#include <algorithm>
#include <queue>

#include "density/density_map.hpp"
#include "fill/candidate_generator.hpp"
#include "layout/fill_region.hpp"

namespace ofl::baselines {

void MonteCarloFiller::fill(layout::Layout& layout) {
  layout.clearFills();
  Rng rng(options_.seed);
  const layout::WindowGrid grid(layout.die(), options_.windowSize);

  layout::DesignRules cellRules = options_.rules;
  cellRules.maxFillSize =
      options_.rules.minWidth * std::max(options_.cellWidthFactor, 1);
  const fill::CandidateGenerator slicer(cellRules, {});

  for (int l = 0; l < layout.numLayers(); ++l) {
    const auto regions =
        layout::computeFillRegions(layout, l, grid, options_.rules);
    const density::DensityMap wires =
        density::DensityMap::computeFromShapes(layout.layer(l).wires, grid);

    double td = 0.0;
    for (double v : wires.values()) td = std::max(td, v);

    // Per-window pool of insertable cells, shuffled once (drawing from the
    // back is then a uniform random draw).
    const auto numWindows = static_cast<std::size_t>(grid.windowCount());
    std::vector<std::vector<geom::Rect>> pool(numWindows);
    std::vector<double> density(numWindows);
    std::vector<double> windowArea(numWindows);
    for (int j = 0; j < grid.rows(); ++j) {
      for (int i = 0; i < grid.cols(); ++i) {
        const auto w = static_cast<std::size_t>(grid.flatIndex(i, j));
        pool[w] = slicer.sliceRegion(regions[w]);
        std::shuffle(pool[w].begin(), pool[w].end(), rng.engine());
        density[w] = wires.at(i, j);
        windowArea[w] = static_cast<double>(grid.windowRect(i, j).area());
      }
    }

    // Max-heap on density deficit.
    using Item = std::pair<double, std::size_t>;  // (gap, window)
    std::priority_queue<Item> heap;
    for (std::size_t w = 0; w < numWindows; ++w) {
      if (td - density[w] > 0 && !pool[w].empty()) {
        heap.push({td - density[w], w});
      }
    }
    while (!heap.empty()) {
      const auto [gap, w] = heap.top();
      heap.pop();
      // Stale entry guard: recompute the gap and skip outdated items.
      const double current = td - density[w];
      if (current <= 1e-9 || pool[w].empty()) continue;
      if (current < gap - 1e-12) {
        heap.push({current, w});
        continue;
      }
      const geom::Rect cell = pool[w].back();
      pool[w].pop_back();
      layout.layer(l).fills.push_back(cell);
      density[w] += static_cast<double>(cell.area()) / windowArea[w];
      if (td - density[w] > 1e-9 && !pool[w].empty()) {
        heap.push({td - density[w], w});
      }
    }
  }
}

}  // namespace ofl::baselines
