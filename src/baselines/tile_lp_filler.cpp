#include "baselines/tile_lp_filler.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "density/density_map.hpp"
#include "fill/candidate_generator.hpp"
#include "layout/fill_region.hpp"
#include "lp/simplex.hpp"

namespace ofl::baselines {
void TileLpFiller::fill(layout::Layout& layout) {
  layout.clearFills();
  const layout::WindowGrid windows(layout.die(), options_.windowSize);
  const geom::Coord tileSize =
      std::max<geom::Coord>(options_.windowSize / options_.tilesPerWindow, 1);
  const layout::WindowGrid tiles(layout.die(), tileSize);
  const int r = options_.tilesPerWindow;

  // Tile-realization rules: deliberately small fills, the classic tile
  // method's signature (each tile is filled with its own little shapes).
  layout::DesignRules tileRules = options_.rules;
  tileRules.maxFillSize = std::max<geom::Coord>(
      options_.rules.minWidth * 3, tileSize / 4);
  const fill::CandidateGenerator slicer(tileRules, {});

  for (int l = 0; l < layout.numLayers(); ++l) {
    const auto tileRegions =
        layout::computeFillRegions(layout, l, tiles, options_.rules);
    const density::DensityMap wireDensity =
        density::DensityMap::computeFromShapes(layout.layer(l).wires, windows);

    // Global target: the max wire density any window already has (the
    // Case I planning target; windows that cannot reach it pay deviation).
    double td = 0.0;
    for (double v : wireDensity.values()) td = std::max(td, v);

    // Solve one LP per block of windows (whole grid when blockEdge == 0:
    // the classical global formulation).
    const int blockEdge = options_.blockEdge > 0
                              ? options_.blockEdge
                              : std::max(windows.cols(), windows.rows());
    for (int bj = 0; bj < windows.rows(); bj += blockEdge) {
      for (int bi = 0; bi < windows.cols(); bi += blockEdge) {
        const int iEnd = std::min(bi + blockEdge, windows.cols());
        const int jEnd = std::min(bj + blockEdge, windows.rows());

        lp::LpModel model;
        // Tile fill variables (normalized to window-area units) plus one
        // deviation variable per window.
        struct TileVar {
          int var;
          int ti;
          int tj;
          double windowArea;
        };
        std::vector<TileVar> tileVars;
        const double epsilon = 1e-3;  // prefer fewer fills at equal spread

        for (int j = bj; j < jEnd; ++j) {
          for (int i = bi; i < iEnd; ++i) {
            const geom::Rect wrect = windows.windowRect(i, j);
            const auto windowArea = static_cast<double>(wrect.area());
            std::vector<std::pair<int, double>> sumTerms;
            for (int tj = j * r; tj < (j + 1) * r && tj < tiles.rows(); ++tj) {
              for (int ti = i * r; ti < (i + 1) * r && ti < tiles.cols();
                   ++ti) {
                const auto t =
                    static_cast<std::size_t>(tiles.flatIndex(ti, tj));
                const double slack =
                    options_.slackUtilization *
                    static_cast<double>(tileRegions[t].area()) / windowArea;
                if (slack <= 0.0) continue;
                const int var = model.addVariable(epsilon, 0.0, slack);
                tileVars.push_back({var, ti, tj, windowArea});
                sumTerms.push_back({var, 1.0});
              }
            }
            const int dev = model.addVariable(1.0, 0.0, 1.0);
            const double gap = td - wireDensity.at(i, j);
            // sum f - dev <= gap  and  sum f + dev >= gap
            auto le = sumTerms;
            le.push_back({dev, -1.0});
            model.addConstraint(std::move(le), lp::Sense::kLessEqual, gap);
            auto ge = sumTerms;
            ge.push_back({dev, 1.0});
            model.addConstraint(std::move(ge), lp::Sense::kGreaterEqual, gap);
          }
        }

        const lp::LpResult solution = lp::SimplexSolver().solve(model);
        if (solution.status != lp::LpStatus::kOptimal) {
          logWarn("TileLpFiller: block LP status %d, block (%d,%d) skipped",
                  static_cast<int>(solution.status), bi, bj);
          continue;
        }

        // Realize each tile's area as small fills sliced from its region.
        for (const TileVar& tv : tileVars) {
          const double targetArea =
              solution.x[static_cast<std::size_t>(tv.var)] * tv.windowArea;
          if (targetArea <= 0.0) continue;
          const auto t =
              static_cast<std::size_t>(tiles.flatIndex(tv.ti, tv.tj));
          std::vector<geom::Rect> cells = slicer.sliceRegion(tileRegions[t]);
          std::sort(cells.begin(), cells.end(),
                    [](const geom::Rect& a, const geom::Rect& b) {
                      if (a.area() != b.area()) return a.area() > b.area();
                      return geom::RectYXLess{}(a, b);
                    });
          double got = 0.0;
          for (const geom::Rect& c : cells) {
            if (got >= targetArea) break;
            layout.layer(l).fills.push_back(c);
            got += static_cast<double>(c.area());
          }
        }
      }
    }
  }
}

}  // namespace ofl::baselines
