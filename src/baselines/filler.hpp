// Common interface for the baseline fillers used as the Table 3
// comparison points (stand-ins for the unavailable ICCAD 2014 contest team
// binaries; see DESIGN.md Section 2 for the substitution rationale).
#pragma once

#include <string>

#include "layout/layout.hpp"

namespace ofl::baselines {

class Filler {
 public:
  virtual ~Filler() = default;

  /// Human-readable name used in the Table 3 report rows.
  virtual std::string name() const = 0;

  /// Inserts dummy fills into `layout` (replacing existing fills).
  virtual void fill(layout::Layout& layout) = 0;
};

}  // namespace ofl::baselines
