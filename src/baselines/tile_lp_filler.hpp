// Tile-based LP filler — the classical min-variation approach of Kahng et
// al. [4] / Tian et al. [5] the paper argues against.
//
// Each window is split into r x r tiles; one LP per layer chooses a fill
// area per tile to minimize (dmax - dmin) over windows subject to per-tile
// slack, with a small fill-area penalty as tie-break. Chosen areas are
// realized as many small tile-local fill rects, reproducing the
// characteristic weakness Table 3 shows for tile methods: good uniformity,
// very large fill count (poor file-size score), no overlay awareness.
#pragma once

#include "baselines/filler.hpp"
#include "layout/design_rules.hpp"

namespace ofl::baselines {

class TileLpFiller : public Filler {
 public:
  struct Options {
    geom::Coord windowSize = 2000;
    int tilesPerWindow = 2;  // r: window is r x r tiles
    layout::DesignRules rules;
    double slackUtilization = 0.85;  // DRC losses when realizing area
    /// Windows per LP block edge. 0 solves ONE global LP per layer — the
    /// classical formulation whose superlinear runtime growth the paper
    /// cites as the motivation for abandoning tile methods (Section 1);
    /// see bench_scaling. The blocked default keeps the baseline usable
    /// as a Table 3 comparison point.
    int blockEdge = 8;
  };

  explicit TileLpFiller(Options options) : options_(options) {}

  std::string name() const override { return "tile-lp"; }
  void fill(layout::Layout& layout) override;

 private:
  Options options_;
};

}  // namespace ofl::baselines
