// Monte-Carlo filler — Chen et al. [8][9]-style randomized insertion.
//
// Repeatedly picks the currently emptiest window (largest gap to the
// global target density) and inserts one randomly chosen DRC-clean cell
// from that window's remaining free space, until every window reaches the
// target or runs out of space. Fast and uniform-ish, but overlay-blind and
// fill-count-heavy — the trade-off profile Table 3 shows for randomized
// methods.
#pragma once

#include "baselines/filler.hpp"
#include "common/rng.hpp"
#include "layout/design_rules.hpp"

namespace ofl::baselines {

class MonteCarloFiller : public Filler {
 public:
  struct Options {
    geom::Coord windowSize = 2000;
    layout::DesignRules rules;
    std::uint64_t seed = 1;
    /// Cell edge used for insertion candidates, in multiples of minWidth.
    int cellWidthFactor = 4;
  };

  explicit MonteCarloFiller(Options options) : options_(options) {}

  std::string name() const override { return "monte-carlo"; }
  void fill(layout::Layout& layout) override;

 private:
  Options options_;
};

}  // namespace ofl::baselines
