// Dummy fill sizing (paper Section 3.3).
//
// Starting from the candidate fills (an upper bound on fill area), each
// window is refined by SHRINKING fills to jointly reduce the density gap
// |fill area - target area| and the inter-layer overlay (Eqn. 9). The
// non-convex problem is relaxed per direction (Eqns. 10-13): with the
// vertical extents frozen, the horizontal edge coordinates form an integer
// LP with only differential constraints and box bounds (Eqn. 14), which is
// solved exactly as a dual min-cost flow (Eqns. 15-16). Directions
// alternate for `iterations` rounds; layers are visited in sequence with
// neighboring-layer geometry frozen (the linearization the paper uses for
// the overlay term, Eqn. 11).
#pragma once

#include <utility>
#include <vector>

#include "fill/candidate_generator.hpp"
#include "geometry/grid_index.hpp"
#include "mcf/dual_lp.hpp"

namespace ofl::fill {

class FillSizer {
 public:
  struct Options {
    double eta = 1.0;   // overlay weight in Eqn. (9); paper uses 1
    /// Extra weight on overlay with signal WIRES relative to overlay with
    /// other fills. The contest metric counts both equally (factor 1,
    /// the default), but physically fill-to-wire coupling degrades signal
    /// timing while fill-to-fill coupling is between dummies; raising the
    /// factor biases shrinking toward wire-coupled fills.
    double etaWireFactor = 1.0;
    int iterations = 2; // H+V alternation rounds
    mcf::McfBackend backend = mcf::McfBackend::kNetworkSimplex;
    /// Ablation: solve each per-direction relaxation with the dense
    /// simplex instead of dual min-cost flow (paper Section 3.3.2 vs
    /// 3.3.3). Same optima, different runtime; see bench_ablation.
    bool useLpSolver = false;
    /// Compute overlay marginals and spacing pairs through per-pass
    /// GridIndexes instead of scanning every opposing shape per edge.
    /// Byte-identical output (the index only skips zero terms of integer
    /// sums, and the pair set is provably the same); toggleable for the
    /// equivalence tests and benchmarks.
    bool spatialIndex = true;
    /// Restart each window's min-cost-flow solves from the previous
    /// round's optimal basis when the constraint topology repeats
    /// (NetworkSimplex::resolve). DEFAULT ON: DualMcfContext canonicalizes
    /// every solve to the unique componentwise-least optimum, so a warm
    /// start returns byte-for-byte the cold-start answer, only faster —
    /// alternate optima can no longer leak into the output. The always-on
    /// network/workspace reuse is independent of this flag.
    bool mcfWarmStart = true;
    /// Skip a re-solve entirely when the LP is unchanged (or changed only
    /// within DualMcfContext's exact sensitivity bound) since the previous
    /// round of the same window pass. Exact at the default tolerance; the
    /// skips are counted separately in Stats::earlyExits.
    bool mcfEarlyExit = true;
    /// Benchmark/debug: full spanning-tree rebuild after every simplex
    /// pivot (the pre-incremental solver). Byte-identical and slower;
    /// bench_mcf uses it as the baseline when attributing the sizing
    /// speedup. Leave off.
    bool mcfFullRefresh = false;
  };

  struct Stats {
    long long solves = 0;
    long long infeasibleFallbacks = 0;
    long long droppedFills = 0;
    long long spacingConstraints = 0;
    long long warmStarts = 0;  // solves restarted from a retained basis
    long long earlyExits = 0;  // solves skipped via the sensitivity memo

    /// Merges another window's counters; the engine sizes windows in
    /// parallel into per-window Stats and reduces them in window order.
    void add(const Stats& other) {
      solves += other.solves;
      infeasibleFallbacks += other.infeasibleFallbacks;
      droppedFills += other.droppedFills;
      spacingConstraints += other.spacingConstraints;
      warmStarts += other.warmStarts;
      earlyExits += other.earlyExits;
    }
  };

  /// Reusable buffers and min-cost-flow contexts for size(). One Scratch
  /// per worker thread; contents are overwritten pass by pass, and the MCF
  /// contexts (keyed by layer*2 + horizontal) let round >= 2 of a window
  /// reuse the round-1 network when the constraint topology repeats.
  struct Scratch {
    std::vector<geom::Rect> opposingWires;
    std::vector<geom::Rect> opposingFills;
    geom::GridIndex wireIndex;
    geom::GridIndex fillIndex;
    geom::GridIndex selfIndex;
    std::vector<std::pair<std::size_t, std::size_t>> closePairs;
    std::vector<geom::Coord> frozen;
    std::vector<geom::Coord> minLen;
    std::vector<geom::Coord> ovLo;
    std::vector<geom::Coord> ovHi;
    std::vector<geom::Coord> step;
    std::vector<geom::Coord> repairNeed;
    std::vector<double> weight;
    std::vector<mcf::DualMcfContext> mcfContexts;
    // Options the cached contexts were constructed with. Scratch objects
    // are typically thread_local and outlive a single engine run; a later
    // run with different solver options must rebuild the contexts instead
    // of silently keeping the old configuration.
    mcf::DualMcfContext::Options mcfContextOptions;
  };

  FillSizer(layout::DesignRules rules, Options options)
      : rules_(rules), options_(options) {}

  /// Shrinks problem.fills in place. Fills stay DRC-legal: width/area
  /// minima are hard LP bounds and spacing violations (if any survive
  /// candidate generation) are repaired or the offending fill dropped.
  void size(WindowProblem& problem, Stats* stats = nullptr) const;

  /// Same, reusing caller-owned scratch buffers across windows (the
  /// engine keeps one Scratch per worker thread).
  void size(WindowProblem& problem, Scratch& scratch,
            Stats* stats = nullptr) const;

 private:
  void sizeLayerDirection(WindowProblem& problem, int layer, bool horizontal,
                          Scratch& scratch, Stats* stats) const;
  /// Removes the residual density surplus left by step rounding with an
  /// exact width trim, preferring fills whose trim also reduces overlay.
  void trimToTarget(WindowProblem& problem, int layer,
                    Scratch& scratch) const;

  layout::DesignRules rules_;
  Options options_;
};

}  // namespace ofl::fill
