// FillEngine: the paper's end-to-end flow (Fig. 3).
//
//   initial fill regions -> density planning -> candidate generation
//   -> second density planning -> fill sizing -> output fills
//
// The engine owns the window dissection and per-window problem assembly;
// the three stages are the separately-testable TargetDensityPlanner,
// CandidateGenerator and FillSizer.
#pragma once

#include "common/cancel.hpp"
#include "common/prof.hpp"
#include "fill/candidate_generator.hpp"
#include "fill/fill_sizer.hpp"
#include "fill/target_planner.hpp"
#include "fill/window_cache.hpp"
#include "layout/layout.hpp"
#include "layout/window_grid.hpp"

namespace ofl::fill {

struct FillEngineOptions {
  geom::Coord windowSize = 2000;
  layout::DesignRules rules;
  PlannerWeights plannerWeights;
  CandidateGenerator::Options candidate;
  FillSizer::Options sizer;
  /// Worker threads for the per-(layer,window) stages; 0 = one per
  /// hardware core, 1 = serial. Results are bit-identical for any value:
  /// workers fill pre-sized per-window slots and the engine merges them
  /// in window order (see docs/architecture.md, "Parallel execution").
  int numThreads = 0;
  /// Optional cooperative cancellation (batch-service timeouts). The
  /// engine polls at stage boundaries and once per window, and unwinds by
  /// throwing CancelledError, leaving `layout` in an unspecified
  /// partially-filled state. Never read unless set; a run that is not
  /// cancelled is byte-identical to one without a token.
  const CancelToken* cancel = nullptr;
  /// Telemetry-only job correlation id stamped onto every span and
  /// quality record this run emits (obs tracer, `--trace`); -1 = none.
  /// Never affects results and is excluded from the cache fingerprint,
  /// like numThreads and cancel.
  std::int64_t jobId = -1;
  /// Optional caller-owned per-window result cache (see window_cache.hpp).
  /// run() deposits per-window results and its target plans; with a
  /// populated cache, runIncremental() pins its targets to the deposited
  /// plans and serves windows whose sizing inputs are unchanged straight
  /// from the cache. run()'s own output never depends on the cache, so it
  /// is excluded from the service result-cache fingerprint (like
  /// numThreads). nullptr = off.
  WindowCache* windowCache = nullptr;
  /// When false, the ECO path still pins targets to the cached plans and
  /// deposits entries, but recomputes every window instead of serving
  /// cache hits — the A/B switch the byte-identity tests flip to prove a
  /// served hit equals a fresh re-solve.
  bool ecoWindowReuse = true;
};

struct FillReport {
  double planningSeconds = 0.0;
  double candidateSeconds = 0.0;
  double sizingSeconds = 0.0;
  double totalSeconds = 0.0;
  std::size_t candidateCount = 0;
  std::size_t fillCount = 0;
  /// ECO runs only: affected windows served from the window cache without
  /// re-running candidate generation or sizing.
  std::size_t ecoWindowsSkipped = 0;
  int threadsUsed = 1;  // resolved thread count the run executed with
  FillSizer::Stats sizerStats;
  std::vector<double> layerTargets;  // planned td per layer (final round)
  /// Registry snapshot taken when the run finished. Empty unless the
  /// caller enabled prof collection (CLI --profile); cumulative since the
  /// caller's last Registry::reset(), so a caller timing one run must
  /// reset first.
  prof::Snapshot profile;
};

class FillEngine {
 public:
  explicit FillEngine(FillEngineOptions options) : options_(options) {}

  /// Inserts dummy fills into `layout` (replacing any existing fills).
  FillReport run(layout::Layout& layout) const;

  /// ECO (engineering change order) mode: `layout` already carries a fill
  /// solution and its wires changed only inside `changed`. Re-fills just
  /// the windows the change touches (inflated by the spacing rule);
  /// every fill outside those windows is preserved bit-exactly, and the
  /// unaffected windows' densities are treated as frozen targets so the
  /// re-planned local targets stay consistent with the old solution.
  FillReport runIncremental(layout::Layout& layout,
                            const geom::Rect& changed) const;

  const FillEngineOptions& options() const { return options_; }

 private:
  FillEngineOptions options_;
};

}  // namespace ofl::fill
