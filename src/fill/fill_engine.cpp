#include "fill/fill_engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/hash.hpp"
#include "common/logging.hpp"
#include "common/prof.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "density/density_map.hpp"
#include "density/metrics.hpp"
#include "layout/fill_region.hpp"
#include "obs/metrics.hpp"
#include "obs/quality.hpp"
#include "obs/trace.hpp"

namespace ofl::fill {

namespace {

// Cancellation checkpoint: no-op without a token. Called at stage
// boundaries and at the top of each per-window work item; a worker that
// throws CancelledError aborts the parallelFor (remaining indices are
// abandoned) and the pool rethrows it on the caller.
inline void checkCancel(const CancelToken* token) {
  if (token != nullptr) token->throwIfExpired();
}

// Quality-telemetry channel: final per-window density and planned-target
// gap per layer, computed from the solved window problems (wire density +
// fill area / window area — the same arithmetic the second planning round
// uses, so no extra geometry passes). Gated: runs only when metrics or
// tracing collection is on; pure observation, never part of the result.
void recordQualityTelemetry(const layout::WindowGrid& grid,
                            const std::vector<WindowProblem>& problems,
                            int numLayers, std::int64_t jobId) {
  if (!obs::metricsEnabled() && !obs::Tracer::enabled()) return;
  const auto numWindows = problems.size();
  std::vector<double> values(numWindows);
  for (int l = 0; l < numLayers; ++l) {
    const auto li = static_cast<std::size_t>(l);
    for (std::size_t w = 0; w < numWindows; ++w) {
      const WindowProblem& p = problems[w];
      geom::Area fillArea = 0;
      for (const geom::Rect& f : p.fills[li]) fillArea += f.area();
      const auto windowArea = static_cast<double>(p.window.area());
      const double d =
          windowArea > 0
              ? p.wireDensity[li] + static_cast<double>(fillArea) / windowArea
              : 0.0;
      values[w] = d;
      obs::recordWindowQuality(l + 1, d, std::abs(d - p.targetDensity[li]));
    }
    const density::DensityMap map(grid.cols(), grid.rows(), values);
    const density::DensityMetrics m = density::computeMetrics(map);
    obs::recordLayerQuality(l + 1, m.mean, m.sigma, m.lineHotspot,
                            m.outlierHotspot, jobId);
  }
}

// Engine-level throughput metrics shared by run() and runIncremental().
void recordRunMetrics(const FillReport& report) {
  if (!obs::metricsEnabled()) return;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  reg.counter("engine.runs").add();
  reg.counter("engine.candidates").add(report.candidateCount);
  reg.counter("engine.fills").add(report.fillCount);
  reg.counter("engine.mcf_warm_starts")
      .add(static_cast<std::uint64_t>(report.sizerStats.warmStarts));
  reg.counter("engine.mcf_early_exits")
      .add(static_cast<std::uint64_t>(report.sizerStats.earlyExits));
  reg.counter("engine.eco_windows_skipped").add(report.ecoWindowsSkipped);
  reg.histogram("engine.run_seconds").observe(report.totalSeconds);
}

// ---- Window-cache fingerprints -----------------------------------------
//
// A window's fill result is a pure function of (a) the option fields that
// can change fills, (b) the window's geometry inputs, and (c) its
// candidate-stage and sizing-stage targets. (a)+(b)+candidate targets form
// the PREFIX key — candidate generation reads nothing else. The FINAL key
// adds the sizing-stage target goals; sizing additionally reads only the
// candidates, which the prefix already determines. Purity of (c) holds
// because the sizer's solves are canonicalized (see DualMcfContext), so
// no solver history can leak into the output.

std::uint64_t windowOptionsDigest(const FillEngineOptions& o) {
  Fnv1a64 h;
  h.i64(o.windowSize);
  h.i64(o.rules.minWidth);
  h.i64(o.rules.minSpacing);
  h.i64(o.rules.minArea);
  h.i64(o.rules.maxFillSize);
  h.f64(o.rules.maxDensity);
  h.f64(o.candidate.lambda);
  h.f64(o.candidate.gamma);
  h.boolean(o.candidate.lithoAvoid.has_value());
  if (o.candidate.lithoAvoid.has_value()) {
    h.i64(o.candidate.lithoAvoid->forbiddenLo);
    h.i64(o.candidate.lithoAvoid->forbiddenHi);
  }
  h.boolean(o.candidate.uniformCells);
  h.f64(o.sizer.eta);
  h.f64(o.sizer.etaWireFactor);
  h.i32(o.sizer.iterations);
  h.i32(static_cast<int>(o.sizer.backend));
  h.boolean(o.sizer.useLpSolver);
  return h.digest();
}

void hashRects(Fnv1a64& h, const std::vector<geom::Rect>& rects) {
  h.u64(rects.size());
  for (const geom::Rect& r : rects) {
    h.i64(r.xl);
    h.i64(r.yl);
    h.i64(r.xh);
    h.i64(r.yh);
  }
}

// Candidate-stage inputs; p.targetDensity must hold the candidate-stage
// targets when this is called.
std::uint64_t windowPrefixKey(std::uint64_t optionsDigest,
                              const WindowProblem& p) {
  Fnv1a64 h;
  h.u64(optionsDigest);
  h.i64(p.window.xl);
  h.i64(p.window.yl);
  h.i64(p.window.xh);
  h.i64(p.window.yh);
  h.u64(p.wires.size());
  for (std::size_t l = 0; l < p.wires.size(); ++l) {
    hashRects(h, p.wires[l]);
    hashRects(h, p.blocked[l]);
    hashRects(h, p.fillRegions[l].rects());
    h.f64(p.wireDensity[l]);
    h.f64(p.targetDensity[l]);
  }
  return h.digest();
}

// Full key: prefix + the sizing-stage target GOALS. Goals, not the final
// clamped values — the ECO path must derive the key before generating
// candidates, and the clamp bounds are themselves functions of the prefix
// inputs, so (prefix, goals) still determines the output.
std::uint64_t windowFinalKey(std::uint64_t prefix,
                             const std::vector<double>& sizingGoals) {
  Fnv1a64 h;
  h.u64(prefix);
  for (const double g : sizingGoals) h.f64(g);
  return h.digest();
}

}  // namespace

// Parallelization contract (docs/architecture.md, "Parallel execution"):
// every parallelFor below iterates an index space whose items are
// independent — layers in the region/density/bounds stages, windows in
// candidate generation and sizing. Workers only write to slot [index] of
// pre-sized vectors; all cross-item reductions (candidate counts, sizer
// stats, fill output) happen sequentially in index order afterwards, so
// the result is bit-identical for any thread count.

FillReport FillEngine::run(layout::Layout& layout) const {
  FillReport report;
  Timer total;
  const double jid = static_cast<double>(options_.jobId);
  obs::ScopedSpan runSpan("engine.run", "engine", {{"job", jid}});
  checkCancel(options_.cancel);
  layout.clearFills();

  const int numLayers = layout.numLayers();
  const layout::WindowGrid grid(layout.die(), options_.windowSize);
  const auto numWindows = static_cast<std::size_t>(grid.windowCount());
  ThreadPool pool(options_.numThreads);
  report.threadsUsed = pool.size();

  // --- Stage 0: fill regions, wire buckets, wire densities ---
  Timer stage;
  std::vector<std::vector<geom::Region>> fillRegions(
      static_cast<std::size_t>(numLayers));  // [layer][window]
  std::vector<std::vector<std::vector<geom::Rect>>> blockedBuckets(
      static_cast<std::size_t>(numLayers));
  std::vector<std::vector<std::vector<geom::Rect>>> wireBuckets(
      static_cast<std::size_t>(numLayers));
  std::vector<density::DensityMap> wireDensity(
      static_cast<std::size_t>(numLayers));
  {
    obs::ScopedSpan span("engine.region_prep", "engine", {{"job", jid}});
    pool.parallelFor(static_cast<std::size_t>(numLayers), [&](std::size_t l) {
      const int layer = static_cast<int>(l);
      {
        prof::ScopedTimer timer(prof::Stage::kRegionPrep);
        obs::ScopedSpan layerSpan(
            "layer.region_prep", "window",
            {{"job", jid}, {"layer", static_cast<double>(layer + 1)}});
        fillRegions[l] = layout::computeFillRegions(
            layout, layer, grid, options_.rules, &blockedBuckets[l]);
        wireBuckets[l] = grid.bucketClipped(layout.layer(layer).wires);
      }
      prof::ScopedTimer timer(prof::Stage::kDensityCompute);
      wireDensity[l] = density::DensityMap::computeFromShapes(
          layout.layer(layer).wires, grid);
    });
  }

  // --- Stage 1: density planning on the geometric bounds (Section 3.1) ---
  std::vector<density::DensityBounds> bounds(
      static_cast<std::size_t>(numLayers));
  const TargetDensityPlanner planner(options_.plannerWeights);
  TargetPlan plan;
  {
    obs::ScopedSpan span("engine.planning", "engine", {{"job", jid}});
    pool.parallelFor(static_cast<std::size_t>(numLayers), [&](std::size_t l) {
      prof::ScopedTimer timer(prof::Stage::kPlanning);
      bounds[l] = density::computeBounds(layout, static_cast<int>(l), grid,
                                         fillRegions[l], options_.rules);
    });
    prof::ScopedTimer timer(prof::Stage::kPlanning);
    plan = planner.plan(bounds, grid.cols(), grid.rows());
  }
  report.planningSeconds += stage.elapsedSeconds();

  // With a window cache attached, remember the stage-1 plan (the ECO path
  // pins its candidate targets to it) and fingerprint each window as it is
  // assembled so the sizing results can be deposited afterwards.
  WindowCache* const cache = options_.windowCache;
  TargetPlan candidatePlan;
  if (cache != nullptr) candidatePlan = plan;
  const std::uint64_t optionsDigest =
      cache != nullptr ? windowOptionsDigest(options_) : 0;
  std::vector<std::uint64_t> prefixKeys(cache != nullptr ? numWindows : 0);
  std::vector<std::size_t> windowCandidates(cache != nullptr ? numWindows : 0);

  // --- Stage 2: per-window candidate generation (Section 3.2) ---
  stage.reset();
  std::vector<WindowProblem> problems(numWindows);
  const CandidateGenerator generator(options_.rules, options_.candidate);
  prof::count(prof::Counter::kWindows, numWindows);
  if (obs::metricsEnabled()) {
    obs::MetricsRegistry::instance().counter("engine.windows").add(numWindows);
  }
  {
    obs::ScopedSpan span("engine.candidates", "engine", {{"job", jid}});
    pool.parallelFor(numWindows, [&](std::size_t w) {
      checkCancel(options_.cancel);
      const int i = static_cast<int>(w) % grid.cols();
      const int j = static_cast<int>(w) / grid.cols();
      WindowProblem& p = problems[w];
      p.window = grid.windowRect(i, j);
      p.fillRegions.reserve(static_cast<std::size_t>(numLayers));
      p.wires.reserve(static_cast<std::size_t>(numLayers));
      p.blocked.reserve(static_cast<std::size_t>(numLayers));
      for (int l = 0; l < numLayers; ++l) {
        p.fillRegions.push_back(fillRegions[static_cast<std::size_t>(l)][w]);
        p.wires.push_back(wireBuckets[static_cast<std::size_t>(l)][w]);
        p.blocked.push_back(blockedBuckets[static_cast<std::size_t>(l)][w]);
        p.wireDensity.push_back(
            wireDensity[static_cast<std::size_t>(l)].at(i, j));
        p.targetDensity.push_back(
            plan.windowTarget[static_cast<std::size_t>(l)][w]);
      }
      if (cache != nullptr) prefixKeys[w] = windowPrefixKey(optionsDigest, p);
      // Worker-local scratch: buffers survive across the windows this
      // thread processes, then across runs in the same process.
      static thread_local CandidateGenerator::Scratch scratch;
      prof::ScopedTimer timer(prof::Stage::kCandidates);
      obs::ScopedSpan windowSpan(
          "window.candidates", "window",
          {{"job", jid}, {"w", static_cast<double>(w)}});
      generator.generate(p, scratch);
    });
  }
  for (std::size_t w = 0; w < numWindows; ++w) {
    std::size_t count = 0;
    for (const auto& layerFills : problems[w].fills) count += layerFills.size();
    report.candidateCount += count;
    if (cache != nullptr) windowCandidates[w] = count;
  }
  report.candidateSeconds += stage.elapsedSeconds();

  checkCancel(options_.cancel);

  // --- Stage 3: second density planning (Fig. 3) ---
  // Candidates cap what each window can actually reach; tighten the upper
  // bounds to the achieved candidate density and re-plan so the sizing
  // targets are consistent.
  stage.reset();
  for (int l = 0; l < numLayers; ++l) {
    auto& upper = bounds[static_cast<std::size_t>(l)].upper;
    for (std::size_t w = 0; w < numWindows; ++w) {
      const WindowProblem& p = problems[w];
      geom::Area candidateArea = 0;
      for (const geom::Rect& f : p.fills[static_cast<std::size_t>(l)]) {
        candidateArea += f.area();
      }
      const auto windowArea = static_cast<double>(p.window.area());
      const double reachable =
          windowArea > 0
              ? p.wireDensity[static_cast<std::size_t>(l)] +
                    static_cast<double>(candidateArea) / windowArea
              : 0.0;
      upper[w] = std::min(upper[w], reachable);
      upper[w] = std::max(upper[w], bounds[static_cast<std::size_t>(l)].lower[w]);
    }
  }
  {
    prof::ScopedTimer timer(prof::Stage::kPlanning);
    obs::ScopedSpan span("engine.replanning", "engine", {{"job", jid}});
    plan = planner.plan(bounds, grid.cols(), grid.rows());
  }
  for (std::size_t w = 0; w < numWindows; ++w) {
    for (int l = 0; l < numLayers; ++l) {
      problems[w].targetDensity[static_cast<std::size_t>(l)] =
          plan.windowTarget[static_cast<std::size_t>(l)][w];
    }
  }
  report.layerTargets = plan.layerTarget;
  report.planningSeconds += stage.elapsedSeconds();

  // --- Stage 4: fill sizing (Section 3.3) ---
  stage.reset();
  const FillSizer sizer(options_.rules, options_.sizer);
  std::vector<FillSizer::Stats> windowStats(numWindows);
  {
    obs::ScopedSpan span("engine.sizing", "engine", {{"job", jid}});
    pool.parallelFor(numWindows, [&](std::size_t w) {
      checkCancel(options_.cancel);
      static thread_local FillSizer::Scratch scratch;
      prof::ScopedTimer timer(prof::Stage::kSizing);
      obs::ScopedSpan windowSpan(
          "window.sizing", "window",
          {{"job", jid}, {"w", static_cast<double>(w)}});
      sizer.size(problems[w], scratch, &windowStats[w]);
    });
  }
  for (const FillSizer::Stats& s : windowStats) report.sizerStats.add(s);
  report.sizingSeconds += stage.elapsedSeconds();

  // Deposit every window's solved fills and both target plans; the final
  // key adds the sizing-stage targets (p.targetDensity holds the stage-3
  // replan values by now) on top of the candidate-stage prefix.
  if (cache != nullptr) {
    for (std::size_t w = 0; w < numWindows; ++w) {
      const WindowProblem& p = problems[w];
      cache->insert(windowFinalKey(prefixKeys[w], p.targetDensity),
                    WindowCache::Entry{p.fills, windowCandidates[w]});
    }
    cache->storePlan(
        {grid.cols(), grid.rows(), numLayers, candidatePlan, plan});
  }

  // --- Output ---
  {
    prof::ScopedTimer timer(prof::Stage::kOutput);
    obs::ScopedSpan span("engine.output", "engine", {{"job", jid}});
    for (const WindowProblem& p : problems) {
      for (int l = 0; l < numLayers; ++l) {
        auto& out = layout.layer(l).fills;
        const auto& fs = p.fills[static_cast<std::size_t>(l)];
        out.insert(out.end(), fs.begin(), fs.end());
      }
    }
  }
  recordQualityTelemetry(grid, problems, numLayers, options_.jobId);
  report.fillCount = layout.fillCount();
  report.totalSeconds = total.elapsedSeconds();
  report.profile = prof::Registry::instance().snapshot();
  recordRunMetrics(report);
  logInfo("FillEngine: %zu fills from %zu candidates in %.2fs "
          "(plan %.2fs, cand %.2fs, size %.2fs, %d threads)",
          report.fillCount, report.candidateCount, report.totalSeconds,
          report.planningSeconds, report.candidateSeconds,
          report.sizingSeconds, report.threadsUsed);
  return report;
}

FillReport FillEngine::runIncremental(layout::Layout& layout,
                                      const geom::Rect& changed) const {
  FillReport report;
  Timer total;
  const double jid = static_cast<double>(options_.jobId);
  obs::ScopedSpan runSpan("engine.eco", "engine", {{"job", jid}});
  checkCancel(options_.cancel);
  const int numLayers = layout.numLayers();
  const layout::WindowGrid grid(layout.die(), options_.windowSize);
  const auto numWindows = static_cast<std::size_t>(grid.windowCount());
  ThreadPool pool(options_.numThreads);
  report.threadsUsed = pool.size();

  // Affected windows: everything the changed area (inflated by the
  // spacing rule, since a moved wire blocks space across a window border)
  // touches.
  std::vector<char> affected(numWindows, 0);
  {
    int i0, j0, i1, j1;
    grid.windowRange(changed.expanded(options_.rules.minSpacing), i0, j0, i1,
                     j1);
    for (int j = j0; j <= j1; ++j) {
      for (int i = i0; i <= i1; ++i) {
        affected[static_cast<std::size_t>(grid.flatIndex(i, j))] = 1;
      }
    }
  }

  // Drop the old fills of affected windows (a fill belongs to exactly one
  // window by construction).
  for (int l = 0; l < numLayers; ++l) {
    auto& fills = layout.layer(l).fills;
    fills.erase(std::remove_if(fills.begin(), fills.end(),
                               [&](const geom::Rect& f) {
                                 int i0, j0, i1, j1;
                                 grid.windowRange(f, i0, j0, i1, j1);
                                 return affected[static_cast<std::size_t>(
                                     grid.flatIndex(i0, j0))] != 0;
                               }),
                fills.end());
  }

  // Pinned-target mode: when the attached window cache carries the target
  // plans of a full run() on this exact grid shape, pin the ECO targets to
  // those plans (clamped into fresh wire-only bounds) instead of
  // re-sweeping. Windows whose sizing inputs are unchanged then reproduce
  // the depositing run's fingerprints byte-for-byte and are served from
  // the cache without re-running candidate generation or sizing.
  WindowCache* const cache = options_.windowCache;
  WindowCache::StoredPlan stored;
  const bool pinned =
      cache != nullptr &&
      cache->getPlan(grid.cols(), grid.rows(), numLayers, stored);

  // Plan with unaffected windows frozen at their current density: their
  // lower and upper bounds collapse to the as-filled value, so the target
  // sweep can only adapt the affected windows.
  Timer stage;
  std::vector<std::vector<geom::Region>> fillRegions(
      static_cast<std::size_t>(numLayers),
      std::vector<geom::Region>(numWindows));
  std::vector<std::vector<std::vector<geom::Rect>>> blockedBuckets(
      static_cast<std::size_t>(numLayers));
  std::vector<std::vector<std::vector<geom::Rect>>> wireBuckets(
      static_cast<std::size_t>(numLayers));
  std::vector<density::DensityMap> wireDensity(
      static_cast<std::size_t>(numLayers));
  std::vector<density::DensityBounds> bounds(
      static_cast<std::size_t>(numLayers));
  pool.parallelFor(static_cast<std::size_t>(numLayers), [&](std::size_t l) {
    const int layer = static_cast<int>(l);
    wireBuckets[l] = grid.bucketClipped(layout.layer(layer).wires);
    {
      prof::ScopedTimer timer(prof::Stage::kDensityCompute);
      wireDensity[l] = density::DensityMap::computeFromShapes(
          layout.layer(layer).wires, grid);
    }
    const auto regions = [&] {
      prof::ScopedTimer timer(prof::Stage::kRegionPrep);
      return layout::computeFillRegions(layout, layer, grid, options_.rules,
                                        &blockedBuckets[l]);
    }();
    auto& b = bounds[l];
    const density::DensityBounds fresh = density::computeBounds(
        layout, layer, grid, regions, options_.rules);
    for (std::size_t w = 0; w < numWindows; ++w) {
      if (affected[w] != 0) fillRegions[l][w] = regions[w];
    }
    if (pinned) {
      // Fresh wire-only bounds everywhere: the pinned plan clamps the
      // stored targets into them exactly as the depositing run did, so
      // unchanged-wire windows reproduce its targets bit-for-bit. No
      // as-filled freeze is needed — targets are not re-swept here, so
      // they cannot drift.
      b = fresh;
      return;
    }
    const density::DensityMap current = [&] {
      prof::ScopedTimer timer(prof::Stage::kDensityCompute);
      return density::DensityMap::compute(layout, layer, grid);
    }();
    b.lower.resize(numWindows);
    b.upper.resize(numWindows);
    for (std::size_t w = 0; w < numWindows; ++w) {
      if (affected[w] != 0) {
        b.lower[w] = fresh.lower[w];
        b.upper[w] = fresh.upper[w];
      } else {
        const int i = static_cast<int>(w) % grid.cols();
        const int j = static_cast<int>(w) / grid.cols();
        b.lower[w] = current.at(i, j);
        b.upper[w] = current.at(i, j);
      }
    }
  });
  const TargetDensityPlanner planner(options_.plannerWeights);
  // Pinned mode plans CANDIDATE targets from the stored stage-1 plan; the
  // sizing targets are re-derived per affected window below, mirroring
  // run()'s stage-3 per-window arithmetic. Legacy mode keeps the single
  // frozen-bounds sweep for both roles.
  const TargetPlan plan = [&] {
    prof::ScopedTimer timer(prof::Stage::kPlanning);
    return pinned ? planner.planPinned(stored.candidate, bounds)
                  : planner.plan(bounds, grid.cols(), grid.rows());
  }();
  report.layerTargets = pinned ? stored.sizing.layerTarget : plan.layerTarget;
  report.planningSeconds += stage.elapsedSeconds();

  // Candidate generation + sizing for affected windows only: solve each
  // affected window into its own slot, then merge in window order.
  stage.reset();
  std::vector<std::size_t> affectedIndices;
  for (std::size_t w = 0; w < numWindows; ++w) {
    if (affected[w] != 0) affectedIndices.push_back(w);
  }
  const CandidateGenerator generator(options_.rules, options_.candidate);
  const FillSizer sizer(options_.rules, options_.sizer);
  const std::uint64_t optionsDigest =
      pinned ? windowOptionsDigest(options_) : 0;
  std::vector<WindowProblem> problems(affectedIndices.size());
  std::vector<FillSizer::Stats> windowStats(affectedIndices.size());
  std::vector<char> served(affectedIndices.size(), 0);
  pool.parallelFor(affectedIndices.size(), [&](std::size_t a) {
    checkCancel(options_.cancel);
    const std::size_t w = affectedIndices[a];
    const int i = static_cast<int>(w) % grid.cols();
    const int j = static_cast<int>(w) / grid.cols();
    WindowProblem& p = problems[a];
    p.window = grid.windowRect(i, j);
    for (int l = 0; l < numLayers; ++l) {
      p.fillRegions.push_back(fillRegions[static_cast<std::size_t>(l)][w]);
      p.wires.push_back(wireBuckets[static_cast<std::size_t>(l)][w]);
      p.blocked.push_back(blockedBuckets[static_cast<std::size_t>(l)][w]);
      p.wireDensity.push_back(
          wireDensity[static_cast<std::size_t>(l)].at(i, j));
      p.targetDensity.push_back(
          plan.windowTarget[static_cast<std::size_t>(l)][w]);
    }
    static thread_local CandidateGenerator::Scratch generatorScratch;
    static thread_local FillSizer::Scratch sizerScratch;
    obs::ScopedSpan windowSpan("window.refill", "window",
                               {{"job", jid}, {"w", static_cast<double>(w)}});
    std::uint64_t key = 0;
    if (pinned) {
      // Content-addressed lookup: prefix over the candidate-stage inputs
      // just assembled, final key adding the stored sizing-target goals
      // (raw, pre-clamp — the same values the depositing run keyed with).
      const std::uint64_t prefix = windowPrefixKey(optionsDigest, p);
      std::vector<double> goals(static_cast<std::size_t>(numLayers));
      for (int l = 0; l < numLayers; ++l) {
        goals[static_cast<std::size_t>(l)] =
            stored.sizing.windowTarget[static_cast<std::size_t>(l)][w];
      }
      key = windowFinalKey(prefix, goals);
      WindowCache::Entry entry;
      if (options_.ecoWindowReuse && cache->lookup(key, entry)) {
        p.fills = std::move(entry.fills);
        served[a] = 1;
        return;
      }
    }
    {
      prof::ScopedTimer timer(prof::Stage::kCandidates);
      generator.generate(p, generatorScratch);
    }
    std::size_t candidates = 0;
    if (pinned) {
      // Re-derive this window's sizing targets exactly as run()'s stage 3
      // does: tighten the upper bound to the achieved candidate density,
      // then clamp the stored goal into the tightened band.
      for (const auto& layerFills : p.fills) candidates += layerFills.size();
      for (int l = 0; l < numLayers; ++l) {
        const auto li = static_cast<std::size_t>(l);
        geom::Area candidateArea = 0;
        for (const geom::Rect& f : p.fills[li]) candidateArea += f.area();
        const auto windowArea = static_cast<double>(p.window.area());
        const double reachable =
            windowArea > 0 ? p.wireDensity[li] +
                                 static_cast<double>(candidateArea) / windowArea
                           : 0.0;
        double upper = std::min(bounds[li].upper[w], reachable);
        upper = std::max(upper, bounds[li].lower[w]);
        p.targetDensity[li] = std::clamp(stored.sizing.windowTarget[li][w],
                                         bounds[li].lower[w], upper);
      }
    }
    {
      prof::ScopedTimer timer(prof::Stage::kSizing);
      sizer.size(p, sizerScratch, &windowStats[a]);
    }
    if (pinned) cache->insert(key, WindowCache::Entry{p.fills, candidates});
  });
  for (std::size_t a = 0; a < problems.size(); ++a) {
    const WindowProblem& p = problems[a];
    if (served[a] != 0) {
      ++report.ecoWindowsSkipped;
    } else {
      for (const auto& layerFills : p.fills) {
        report.candidateCount += layerFills.size();
      }
      report.sizerStats.add(windowStats[a]);
    }
    for (int l = 0; l < numLayers; ++l) {
      auto& out = layout.layer(l).fills;
      const auto& fs = p.fills[static_cast<std::size_t>(l)];
      out.insert(out.end(), fs.begin(), fs.end());
    }
  }
  prof::count(prof::Counter::kEcoWindowsSkipped, report.ecoWindowsSkipped);
  report.sizingSeconds += stage.elapsedSeconds();
  report.fillCount = layout.fillCount();
  report.totalSeconds = total.elapsedSeconds();
  report.profile = prof::Registry::instance().snapshot();
  recordRunMetrics(report);
  logInfo("FillEngine ECO: refilled affected windows in %.3fs (%zu fills)",
          report.totalSeconds, report.fillCount);
  return report;
}

}  // namespace ofl::fill
