#include "fill/fill_engine.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/timer.hpp"
#include "density/density_map.hpp"
#include "layout/fill_region.hpp"

namespace ofl::fill {

FillReport FillEngine::run(layout::Layout& layout) const {
  FillReport report;
  Timer total;
  layout.clearFills();

  const int numLayers = layout.numLayers();
  const layout::WindowGrid grid(layout.die(), options_.windowSize);
  const auto numWindows = static_cast<std::size_t>(grid.windowCount());

  // --- Stage 0: fill regions, wire buckets, wire densities ---
  Timer stage;
  std::vector<std::vector<geom::Region>> fillRegions;   // [layer][window]
  std::vector<std::vector<std::vector<geom::Rect>>> wireBuckets;
  std::vector<density::DensityMap> wireDensity;
  fillRegions.reserve(static_cast<std::size_t>(numLayers));
  wireBuckets.reserve(static_cast<std::size_t>(numLayers));
  wireDensity.reserve(static_cast<std::size_t>(numLayers));
  for (int l = 0; l < numLayers; ++l) {
    fillRegions.push_back(
        layout::computeFillRegions(layout, l, grid, options_.rules));
    wireBuckets.push_back(grid.bucketClipped(layout.layer(l).wires));
    wireDensity.push_back(
        density::DensityMap::computeFromShapes(layout.layer(l).wires, grid));
  }

  // --- Stage 1: density planning on the geometric bounds (Section 3.1) ---
  std::vector<density::DensityBounds> bounds;
  bounds.reserve(static_cast<std::size_t>(numLayers));
  for (int l = 0; l < numLayers; ++l) {
    bounds.push_back(density::computeBounds(
        layout, l, grid, fillRegions[static_cast<std::size_t>(l)],
        options_.rules));
  }
  const TargetDensityPlanner planner(options_.plannerWeights);
  TargetPlan plan = planner.plan(bounds, grid.cols(), grid.rows());
  report.planningSeconds += stage.elapsedSeconds();

  // --- Stage 2: per-window candidate generation (Section 3.2) ---
  stage.reset();
  std::vector<WindowProblem> problems(numWindows);
  const CandidateGenerator generator(options_.rules, options_.candidate);
  for (int j = 0; j < grid.rows(); ++j) {
    for (int i = 0; i < grid.cols(); ++i) {
      const auto w = static_cast<std::size_t>(grid.flatIndex(i, j));
      WindowProblem& p = problems[w];
      p.window = grid.windowRect(i, j);
      p.fillRegions.reserve(static_cast<std::size_t>(numLayers));
      p.wires.reserve(static_cast<std::size_t>(numLayers));
      for (int l = 0; l < numLayers; ++l) {
        p.fillRegions.push_back(fillRegions[static_cast<std::size_t>(l)][w]);
        p.wires.push_back(wireBuckets[static_cast<std::size_t>(l)][w]);
        p.wireDensity.push_back(wireDensity[static_cast<std::size_t>(l)].at(i, j));
        p.targetDensity.push_back(
            plan.windowTarget[static_cast<std::size_t>(l)][w]);
      }
      generator.generate(p);
      for (const auto& layerFills : p.fills) {
        report.candidateCount += layerFills.size();
      }
    }
  }
  report.candidateSeconds += stage.elapsedSeconds();

  // --- Stage 3: second density planning (Fig. 3) ---
  // Candidates cap what each window can actually reach; tighten the upper
  // bounds to the achieved candidate density and re-plan so the sizing
  // targets are consistent.
  stage.reset();
  for (int l = 0; l < numLayers; ++l) {
    auto& upper = bounds[static_cast<std::size_t>(l)].upper;
    for (std::size_t w = 0; w < numWindows; ++w) {
      const WindowProblem& p = problems[w];
      geom::Area candidateArea = 0;
      for (const geom::Rect& f : p.fills[static_cast<std::size_t>(l)]) {
        candidateArea += f.area();
      }
      const auto windowArea = static_cast<double>(p.window.area());
      const double reachable =
          windowArea > 0
              ? p.wireDensity[static_cast<std::size_t>(l)] +
                    static_cast<double>(candidateArea) / windowArea
              : 0.0;
      upper[w] = std::min(upper[w], reachable);
      upper[w] = std::max(upper[w], bounds[static_cast<std::size_t>(l)].lower[w]);
    }
  }
  plan = planner.plan(bounds, grid.cols(), grid.rows());
  for (std::size_t w = 0; w < numWindows; ++w) {
    for (int l = 0; l < numLayers; ++l) {
      problems[w].targetDensity[static_cast<std::size_t>(l)] =
          plan.windowTarget[static_cast<std::size_t>(l)][w];
    }
  }
  report.layerTargets = plan.layerTarget;
  report.planningSeconds += stage.elapsedSeconds();

  // --- Stage 4: fill sizing (Section 3.3) ---
  stage.reset();
  const FillSizer sizer(options_.rules, options_.sizer);
  for (WindowProblem& p : problems) {
    sizer.size(p, &report.sizerStats);
  }
  report.sizingSeconds += stage.elapsedSeconds();

  // --- Output ---
  for (const WindowProblem& p : problems) {
    for (int l = 0; l < numLayers; ++l) {
      auto& out = layout.layer(l).fills;
      const auto& fs = p.fills[static_cast<std::size_t>(l)];
      out.insert(out.end(), fs.begin(), fs.end());
    }
  }
  report.fillCount = layout.fillCount();
  report.totalSeconds = total.elapsedSeconds();
  logInfo("FillEngine: %zu fills from %zu candidates in %.2fs "
          "(plan %.2fs, cand %.2fs, size %.2fs)",
          report.fillCount, report.candidateCount, report.totalSeconds,
          report.planningSeconds, report.candidateSeconds,
          report.sizingSeconds);
  return report;
}

FillReport FillEngine::runIncremental(layout::Layout& layout,
                                      const geom::Rect& changed) const {
  FillReport report;
  Timer total;
  const int numLayers = layout.numLayers();
  const layout::WindowGrid grid(layout.die(), options_.windowSize);
  const auto numWindows = static_cast<std::size_t>(grid.windowCount());

  // Affected windows: everything the changed area (inflated by the
  // spacing rule, since a moved wire blocks space across a window border)
  // touches.
  std::vector<char> affected(numWindows, 0);
  {
    int i0, j0, i1, j1;
    grid.windowRange(changed.expanded(options_.rules.minSpacing), i0, j0, i1,
                     j1);
    for (int j = j0; j <= j1; ++j) {
      for (int i = i0; i <= i1; ++i) {
        affected[static_cast<std::size_t>(grid.flatIndex(i, j))] = 1;
      }
    }
  }

  // Drop the old fills of affected windows (a fill belongs to exactly one
  // window by construction).
  for (int l = 0; l < numLayers; ++l) {
    auto& fills = layout.layer(l).fills;
    fills.erase(std::remove_if(fills.begin(), fills.end(),
                               [&](const geom::Rect& f) {
                                 int i0, j0, i1, j1;
                                 grid.windowRange(f, i0, j0, i1, j1);
                                 return affected[static_cast<std::size_t>(
                                     grid.flatIndex(i0, j0))] != 0;
                               }),
                fills.end());
  }

  // Plan with unaffected windows frozen at their current density: their
  // lower and upper bounds collapse to the as-filled value, so the target
  // sweep can only adapt the affected windows.
  Timer stage;
  std::vector<std::vector<geom::Region>> fillRegions(
      static_cast<std::size_t>(numLayers),
      std::vector<geom::Region>(numWindows));
  std::vector<std::vector<std::vector<geom::Rect>>> wireBuckets;
  std::vector<density::DensityMap> wireDensity;
  std::vector<density::DensityBounds> bounds(
      static_cast<std::size_t>(numLayers));
  for (int l = 0; l < numLayers; ++l) {
    wireBuckets.push_back(grid.bucketClipped(layout.layer(l).wires));
    wireDensity.push_back(
        density::DensityMap::computeFromShapes(layout.layer(l).wires, grid));
    const density::DensityMap current =
        density::DensityMap::compute(layout, l, grid);
    const auto regions =
        layout::computeFillRegions(layout, l, grid, options_.rules);
    auto& b = bounds[static_cast<std::size_t>(l)];
    b.lower.resize(numWindows);
    b.upper.resize(numWindows);
    const density::DensityBounds fresh = density::computeBounds(
        layout, l, grid, regions, options_.rules);
    for (std::size_t w = 0; w < numWindows; ++w) {
      if (affected[w] != 0) {
        fillRegions[static_cast<std::size_t>(l)][w] = regions[w];
        b.lower[w] = fresh.lower[w];
        b.upper[w] = fresh.upper[w];
      } else {
        const int i = static_cast<int>(w) % grid.cols();
        const int j = static_cast<int>(w) / grid.cols();
        b.lower[w] = current.at(i, j);
        b.upper[w] = current.at(i, j);
      }
    }
  }
  const TargetDensityPlanner planner(options_.plannerWeights);
  const TargetPlan plan = planner.plan(bounds, grid.cols(), grid.rows());
  report.layerTargets = plan.layerTarget;
  report.planningSeconds += stage.elapsedSeconds();

  // Candidate generation + sizing for affected windows only.
  stage.reset();
  const CandidateGenerator generator(options_.rules, options_.candidate);
  const FillSizer sizer(options_.rules, options_.sizer);
  for (int j = 0; j < grid.rows(); ++j) {
    for (int i = 0; i < grid.cols(); ++i) {
      const auto w = static_cast<std::size_t>(grid.flatIndex(i, j));
      if (affected[w] == 0) continue;
      WindowProblem p;
      p.window = grid.windowRect(i, j);
      for (int l = 0; l < numLayers; ++l) {
        p.fillRegions.push_back(fillRegions[static_cast<std::size_t>(l)][w]);
        p.wires.push_back(wireBuckets[static_cast<std::size_t>(l)][w]);
        p.wireDensity.push_back(
            wireDensity[static_cast<std::size_t>(l)].at(i, j));
        p.targetDensity.push_back(
            plan.windowTarget[static_cast<std::size_t>(l)][w]);
      }
      generator.generate(p);
      for (const auto& layerFills : p.fills) {
        report.candidateCount += layerFills.size();
      }
      sizer.size(p, &report.sizerStats);
      for (int l = 0; l < numLayers; ++l) {
        auto& out = layout.layer(l).fills;
        const auto& fs = p.fills[static_cast<std::size_t>(l)];
        out.insert(out.end(), fs.begin(), fs.end());
      }
    }
  }
  report.sizingSeconds += stage.elapsedSeconds();
  report.fillCount = layout.fillCount();
  report.totalSeconds = total.elapsedSeconds();
  logInfo("FillEngine ECO: refilled affected windows in %.3fs (%zu fills)",
          report.totalSeconds, report.fillCount);
  return report;
}

}  // namespace ofl::fill
