// Target density planning (paper Section 3.1).
//
// Chooses one target layout density td per layer; each window's target is
// td clamped into its feasible band [l(i,j), u(i,j)] (Definition 1 /
// Eqn. 5). Case I (all windows reach max lower bound) falls out of the
// sweep naturally; Case II searches candidate td values with small steps
// between the extremes of the bounds, scoring each candidate with the
// density portion of the contest objective.
#pragma once

#include <vector>

#include "density/bounds.hpp"

namespace ofl::fill {

/// Density-score shape used during planning: each metric contributes
/// weight * max(0, 1 - value / beta), mirroring contest Eqn. (4). The
/// outlier term uses the paper's sigma*oh coupling per layer.
struct PlannerWeights {
  double wSigma = 0.2;
  double wLine = 0.2;
  double wOutlier = 0.15;
  double betaSigma = 0.1;
  double betaLine = 10.0;
  double betaOutlier = 1.0;
};

struct TargetPlan {
  /// Chosen td per layer.
  std::vector<double> layerTarget;
  /// Per-layer, per-window target density dt (flat window index).
  std::vector<std::vector<double>> windowTarget;
};

class TargetDensityPlanner {
 public:
  explicit TargetDensityPlanner(PlannerWeights weights, int sweepSteps = 64)
      : weights_(weights), sweepSteps_(sweepSteps) {}

  /// Plans all layers; boundsPerLayer[l] are the window density bounds of
  /// layer l on a cols x rows grid.
  TargetPlan plan(const std::vector<density::DensityBounds>& boundsPerLayer,
                  int cols, int rows) const;

  /// Clamp-only plan: no sweep, each window's target is goal's value
  /// clamped into the window's current bounds, and layer targets are
  /// carried over verbatim. The ECO path uses this to pin its targets to
  /// the plans of the full run that populated the window cache, keeping
  /// untouched windows' sizing inputs byte-identical to that run.
  TargetPlan planPinned(
      const TargetPlan& goal,
      const std::vector<density::DensityBounds>& boundsPerLayer) const;

  /// Density score of a clamped target choice on one layer (exposed for
  /// tests and the ablation bench).
  double scoreLayer(const density::DensityBounds& bounds, int cols, int rows,
                    double td) const;

 private:
  PlannerWeights weights_;
  int sweepSteps_;
};

}  // namespace ofl::fill
