// Window-sharded fill executor with bounded peak memory.
//
// FillEngine::run holds the whole flattened layout plus every window's
// problem in RAM at once; contest-scale inputs (up to 31.8M polygons,
// PAPER.md) cannot. ShardedEngine runs the same five-stage flow without
// ever materializing the layout:
//
//   ingest    stream GDS/OASIS -> flatten -> decompose -> route each rect
//             into per-(layer, window-row) spools (ShardStore, spill to
//             disk over budget). A rect inflated by minSpacing that
//             crosses a row border is routed into both rows — that is the
//             halo that keeps cross-window blocking exact.
//   bounds    row at a time: rebuild the row's wire/blocked buckets and
//             fill regions, reduce to per-window scalars (wire density,
//             lower/upper bound), drop the geometry.
//   plan      TargetDensityPlanner over the full scalar arrays (identical
//             inputs to the in-memory path). An FFT-smoothed global
//             density map (density::FftDensity) balances shard sizes.
//   shards    per shard (a contiguous row band), row at a time: rebuild
//             geometry, generate candidates (same thread pool + scratch
//             reuse as FillEngine), spool candidates; replan; then size
//             each row's windows and spool the final fills.
//   output    streaming GDS writer: per layer, pass-through wires then
//             fills in window order — byte-identical to
//             Writer::writeFile(layout.toGds()).
//
// Identity argument: every per-window input (bucket contents and order,
// fill regions, densities, targets) is reconstructed equal to what
// FillEngine::run assembles, the per-window solvers are pure functions of
// those inputs, and the output serialization shares the in-memory
// writer's record encoders. The determinism suite pins this on s/b/m at 1
// and 4 threads.
//
// Not supported with streaming: window-cache deposits and the ECO path
// (FillService rejects --stream ECO jobs with a clear error).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "fill/fill_engine.hpp"

namespace ofl::fill {

struct ShardedOptions {
  /// Same knobs as the in-memory engine (windowCache is ignored).
  FillEngineOptions engine;
  /// Peak-memory target for the pipeline's bookkeeping: the rect spools
  /// get half of it, shard working sets aim for a quarter.
  std::size_t memBudgetMiB = 512;
  /// Directory for spool spill files (defaults to the output's directory
  /// when empty).
  std::string spillDir;
  /// Fixed rows per shard; 0 = auto (budget-capped, FFT-load-balanced).
  int rowsPerShard = 0;
  /// Sigma (in windows) of the FFT density smoothing used for shard load
  /// balancing and scale.* telemetry.
  double loadSigmaWindows = 1.5;
  /// Read chunk for the streaming parsers (tests shrink it).
  std::size_t readerChunkBytes = 256 * 1024;
};

struct ShardedReport {
  FillReport fill;
  int cols = 0;
  int rows = 0;
  int shardCount = 0;
  std::uint64_t spilledBytes = 0;
  std::uint64_t spillEvents = 0;
  std::size_t wireCount = 0;
  long long outputBytes = 0;
  double ingestSeconds = 0.0;
  double fftSeconds = 0.0;
};

class ShardedEngine {
 public:
  explicit ShardedEngine(const ShardedOptions& options) : options_(options) {}

  /// Bounded-memory pre-scan with service::loadFlatLayout's exact
  /// semantics: bbox over every structure's boundary bboxes and the
  /// maximum GDS layer number. Detects GDSII vs OFL-OASIS by magic.
  static bool scanExtents(const std::string& path, geom::Rect* bbox,
                          int* maxLayer, std::string* error);

  /// Streams `inputPath` through the sharded flow and writes the filled
  /// GDSII to `outputPath`. `die` overrides the pre-scanned bbox.
  bool runFile(const std::string& inputPath, const std::string& outputPath,
               const std::optional<geom::Rect>& die, ShardedReport* report,
               std::string* error) const;

  const ShardedOptions& options() const { return options_; }

 private:
  ShardedOptions options_;
};

}  // namespace ofl::fill
