// Per-window fill-result cache for ECO incremental re-solve.
//
// A full FillEngine::run() deposits, for every window, the final fills
// keyed by a fingerprint of that window's sizing inputs (window rect,
// per-layer wires/blocked/fill-regions/wire-density, the candidate-stage
// and sizing-stage targets, and the option fields that can change the
// result). A later runIncremental() re-derives the same fingerprint for
// each affected window and serves unchanged windows straight from the
// cache — skipping candidate generation and sizing for them entirely.
//
// The cache also stores the full run's two target plans (the stage-1
// candidate plan and the stage-3 replan). The ECO path pins its targets
// to those plans (clamped into each window's fresh bounds) instead of
// re-sweeping, which is what makes the fingerprints of untouched windows
// reproduce byte-for-byte; see docs/architecture.md, "Sizer warm-starts
// and incremental ECO".
//
// Ownership: caller-owned and opt-in (FillEngineOptions::windowCache).
// lookup/insert are thread-safe (the engine calls them from worker
// threads); plan storage is read before and written after the parallel
// stages. Entries are content-addressed, so serving a hit can never
// change results relative to recomputing — a guarantee the engine
// additionally exposes for verification via ecoWindowReuse = false.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "fill/target_planner.hpp"
#include "geometry/rect.hpp"

namespace ofl::fill {

class WindowCache {
 public:
  struct Entry {
    std::vector<std::vector<geom::Rect>> fills;  // final fills, per layer
    std::size_t candidateCount = 0;              // candidates the solve used
  };

  /// Target plans of the depositing full run, on its window grid.
  struct StoredPlan {
    int cols = 0;
    int rows = 0;
    int layers = 0;
    TargetPlan candidate;  // stage-1 plan (candidate-generation targets)
    TargetPlan sizing;     // stage-3 replan (sizing targets)
  };

  /// Returns true and copies the entry on a hit.
  bool lookup(std::uint64_t key, Entry& out) const;
  void insert(std::uint64_t key, Entry entry);

  void storePlan(StoredPlan plan);
  /// Copies the stored plan when one exists for this grid shape.
  bool getPlan(int cols, int rows, int layers, StoredPlan& out) const;

  std::size_t size() const;
  long long hits() const;
  long long misses() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  bool hasPlan_ = false;
  StoredPlan plan_;
  mutable long long hits_ = 0;
  mutable long long misses_ = 0;
};

}  // namespace ofl::fill
