#include "fill/sharded_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/logging.hpp"
#include "common/prof.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "density/bounds.hpp"
#include "density/density_map.hpp"
#include "density/fft_density.hpp"
#include "density/metrics.hpp"
#include "gds/oasis.hpp"
#include "gds/stream_flatten.hpp"
#include "gds/stream_reader.hpp"
#include "gds/stream_writer.hpp"
#include "geometry/boolean.hpp"
#include "geometry/decompose.hpp"
#include "geometry/polygon.hpp"
#include "layout/shard_store.hpp"
#include "obs/metrics.hpp"
#include "obs/quality.hpp"
#include "obs/trace.hpp"

namespace ofl::fill {
namespace {

inline void checkCancel(const CancelToken* token) {
  if (token != nullptr) token->throwIfExpired();
}

bool setError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// GDSII vs OFL-OASIS by magic (loadFlatLayout tries GDS then OASIS; for
// well-formed files the leading bytes decide it).
bool isOasisFile(const std::string& path) {
  static constexpr char kOasisMagic[] = "OFLOASIS1\n";
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char head[sizeof(kOasisMagic) - 1];
  const std::size_t got = std::fread(head, 1, sizeof(head), f);
  std::fclose(f);
  return got == sizeof(head) &&
         std::memcmp(head, kOasisMagic, sizeof(head)) == 0;
}

bool scanFile(const std::string& path, gds::StreamEvents& events,
              std::string* error, std::size_t chunkBytes) {
  if (isOasisFile(path)) {
    gds::OasisStreamReader::Options o;
    o.chunkBytes = chunkBytes;
    return gds::OasisStreamReader::scan(path, events, error, o);
  }
  gds::StreamReader::Options o;
  o.chunkBytes = chunkBytes;
  return gds::StreamReader::scan(path, events, error, o);
}

// Pre-scan sink with loadFlatLayout's bbox/maxLayer semantics: every
// structure's boundaries count, unflattened.
class ExtentScan : public gds::StreamEvents {
 public:
  void onBoundary(const gds::Boundary& b) override {
    maxLayer = std::max<int>(maxLayer, b.layer);
    bbox = bbox.bboxUnion(geom::Polygon(b.vertices).bbox());
  }
  geom::Rect bbox;  // default-constructed {0,0,0,0}, like loadFlatLayout
  int maxLayer = 0;
};

std::string directoryOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  return slash == 0 ? "/" : path.substr(0, slash);
}

}  // namespace

bool ShardedEngine::scanExtents(const std::string& path, geom::Rect* bbox,
                                int* maxLayer, std::string* error) {
  ExtentScan scan;
  if (!scanFile(path, scan, error, 256 * 1024)) return false;
  if (bbox != nullptr) *bbox = scan.bbox;
  if (maxLayer != nullptr) *maxLayer = scan.maxLayer;
  return true;
}

bool ShardedEngine::runFile(const std::string& inputPath,
                            const std::string& outputPath,
                            const std::optional<geom::Rect>& die,
                            ShardedReport* report, std::string* error) const {
  ShardedReport localReport;
  ShardedReport& rep = report != nullptr ? *report : localReport;
  rep = ShardedReport{};
  Timer total;
  const FillEngineOptions& eng = options_.engine;
  const double jid = static_cast<double>(eng.jobId);
  obs::ScopedSpan runSpan("engine.sharded_run", "engine", {{"job", jid}});

  // --- Pre-scan: die extents and layer count (bounded memory) ---
  geom::Rect bbox;
  int maxLayer = 0;
  if (!scanExtents(inputPath, &bbox, &maxLayer, error)) return false;
  const geom::Rect effectiveDie = die.value_or(bbox);
  if (effectiveDie.empty()) {
    return setError(error, "layout is empty and no die given");
  }
  const int numLayers = std::max(maxLayer, 1);
  const layout::WindowGrid grid(effectiveDie, eng.windowSize);
  const int cols = grid.cols(), rows = grid.rows();
  const auto numWindows = static_cast<std::size_t>(grid.windowCount());
  rep.cols = cols;
  rep.rows = rows;
  ThreadPool pool(eng.numThreads);
  rep.fill.threadsUsed = pool.size();

  const std::size_t budgetBytes = options_.memBudgetMiB << 20;
  layout::ShardStore::Options storeOptions;
  storeOptions.memBudgetBytes = std::max<std::size_t>(budgetBytes / 2, 1u << 20);
  storeOptions.spillDir =
      options_.spillDir.empty() ? directoryOf(outputPath) : options_.spillDir;
  layout::ShardStore store(storeOptions);
  // Fills get their own store: the sizing pass appends fills while the
  // candidate-spool readers are open, and an append can trigger a
  // store-wide spill that invalidates open readers — so fills must never
  // share a budget pool with the spools being read.
  layout::ShardStore::Options fillStoreOptions = storeOptions;
  fillStoreOptions.memBudgetBytes =
      std::max<std::size_t>(budgetBytes / 8, 1u << 20);
  layout::ShardStore fillStore(fillStoreOptions);

  const auto nl = static_cast<std::size_t>(numLayers);
  const auto nr = static_cast<std::size_t>(rows);
  // Spools: pass-through wires per layer (output order), routed wires per
  // (layer, row) with minSpacing halos, then candidates/fills per layer.
  std::vector<layout::ShardStore::SpoolId> passWire(nl), candSpool(nl),
      fillSpool(nl);
  std::vector<std::vector<layout::ShardStore::SpoolId>> rowWire(
      nl, std::vector<layout::ShardStore::SpoolId>(nr));
  for (std::size_t l = 0; l < nl; ++l) {
    passWire[l] = store.createSpool();
    candSpool[l] = store.createSpool();
    fillSpool[l] = fillStore.createSpool();
    for (std::size_t j = 0; j < nr; ++j) rowWire[l][j] = store.createSpool();
  }

  // --- Ingest: stream + flatten + decompose + route into row spools ---
  Timer stage;
  {
    obs::ScopedSpan span("shard.ingest", "engine", {{"job", jid}});
    prof::ScopedTimer timer(prof::Stage::kRegionPrep);
    gds::FlattenStream flatten([&](const gds::Boundary& b) {
      const int l = b.layer - 1;
      if (l < 0 || l >= numLayers) return;
      if (b.datatype == 1) return;  // stale fills; run() clears them anyway
      for (const geom::Rect& r : geom::decompose(geom::Polygon(b.vertices))) {
        store.append(passWire[static_cast<std::size_t>(l)], r);
        ++rep.wireCount;
        // Route by the minSpacing-inflated extent: the halo rows see the
        // rect too, exactly as global bucketClipped(inflated) would.
        const geom::Rect e = r.expanded(eng.rules.minSpacing);
        if (e.empty()) continue;
        int i0, j0, i1, j1;
        grid.windowRange(e, i0, j0, i1, j1);
        for (int j = j0; j <= j1; ++j) {
          store.append(rowWire[static_cast<std::size_t>(l)]
                              [static_cast<std::size_t>(j)],
                       r);
        }
      }
    });
    if (!scanFile(inputPath, flatten, error, options_.readerChunkBytes)) {
      return false;
    }
    if (!flatten.finish(error)) return false;
  }
  rep.ingestSeconds = stage.elapsedSeconds();
  checkCancel(eng.cancel);

  // Rebuilds one row's per-window wire and blocked buckets from its
  // spool, equal in content and order to the global bucketClipped results
  // restricted to row j (the spool preserves wire input order, and a
  // window's clips depend only on rects that touch it).
  std::vector<std::vector<geom::Rect>> wireBuckets(
      static_cast<std::size_t>(cols));
  std::vector<std::vector<geom::Rect>> blockedBuckets(
      static_cast<std::size_t>(cols));
  const auto buildRowBuckets = [&](std::size_t l, int j) {
    for (auto& b : wireBuckets) b.clear();
    for (auto& b : blockedBuckets) b.clear();
    store.forEach(rowWire[l][static_cast<std::size_t>(j)],
                  [&](const geom::Rect& r) {
      const geom::Rect e = r.expanded(eng.rules.minSpacing);
      if (!e.empty()) {
        int i0, j0, i1, j1;
        grid.windowRange(e, i0, j0, i1, j1);
        if (j0 <= j && j <= j1) {
          for (int i = i0; i <= i1; ++i) {
            const geom::Rect clip = e.intersection(grid.windowRect(i, j));
            if (!clip.empty()) {
              blockedBuckets[static_cast<std::size_t>(i)].push_back(clip);
            }
          }
        }
      }
      if (!r.empty()) {
        int i0, j0, i1, j1;
        grid.windowRange(r, i0, j0, i1, j1);
        if (j0 <= j && j <= j1) {
          for (int i = i0; i <= i1; ++i) {
            const geom::Rect clip = r.intersection(grid.windowRect(i, j));
            if (!clip.empty()) {
              wireBuckets[static_cast<std::size_t>(i)].push_back(clip);
            }
          }
        }
      }
    });
  };

  // --- Bounds pass: reduce each row to per-window scalars ---
  stage.reset();
  std::vector<std::vector<double>> wireDen(nl,
                                           std::vector<double>(numWindows));
  std::vector<density::DensityBounds> bounds(nl);
  for (auto& b : bounds) {
    b.lower.resize(numWindows);
    b.upper.resize(numWindows);
  }
  {
    obs::ScopedSpan span("shard.bounds", "engine", {{"job", jid}});
    for (std::size_t l = 0; l < nl; ++l) {
      for (int j = 0; j < rows; ++j) {
        checkCancel(eng.cancel);
        buildRowBuckets(l, j);
        pool.parallelFor(static_cast<std::size_t>(cols), [&](std::size_t i) {
          prof::ScopedTimer timer(prof::Stage::kPlanning);
          const auto w = static_cast<std::size_t>(
              grid.flatIndex(static_cast<int>(i), j));
          const geom::Rect windowRect = grid.windowRect(static_cast<int>(i), j);
          const geom::Area windowArea = windowRect.area();
          const double wires =
              windowArea > 0
                  ? static_cast<double>(geom::unionArea(wireBuckets[i])) /
                        windowArea
                  : 0.0;
          const std::vector<geom::Rect> windowRects{windowRect};
          const geom::Region region =
              geom::Region::fromDisjoint(geom::booleanOp(
                  windowRects, blockedBuckets[i], geom::BoolOp::kSubtract));
          const density::WindowBound bound = density::computeWindowBound(
              wires, windowArea, region, eng.rules);
          wireDen[l][w] = wires;
          bounds[l].lower[w] = bound.lower;
          bounds[l].upper[w] = bound.upper;
        });
      }
    }
  }

  // --- Global target planning (stage 1) ---
  const TargetDensityPlanner planner(eng.plannerWeights);
  TargetPlan plan;
  {
    obs::ScopedSpan span("engine.planning", "engine", {{"job", jid}});
    prof::ScopedTimer timer(prof::Stage::kPlanning);
    plan = planner.plan(bounds, cols, rows);
  }
  rep.fill.planningSeconds += stage.elapsedSeconds();

  // --- FFT global density + shard partition ---
  // The smoothed layer-average density is a layout-wide load model: row
  // bands with dense neighborhoods cost more in candidate generation and
  // sizing, so shard boundaries follow cumulative smoothed load (capped
  // by the byte budget). Partitioning never changes per-window results.
  stage.reset();
  std::vector<int> shardEnd;  // exclusive end row per shard
  {
    std::vector<double> avg(numWindows, 0.0);
    for (std::size_t l = 0; l < nl; ++l) {
      for (std::size_t w = 0; w < numWindows; ++w) avg[w] += wireDen[l][w];
    }
    for (double& v : avg) v /= static_cast<double>(numLayers);
    const density::DensityMap smoothed = density::FftDensity::smooth(
        density::DensityMap(cols, rows, std::move(avg)),
        options_.loadSigmaWindows);
    rep.fftSeconds = stage.elapsedSeconds();

    std::vector<double> rowLoad(nr, 0.0);
    std::vector<std::uint64_t> rowBytes(nr, 0);
    double totalLoad = 0.0;
    std::uint64_t totalBytes = 0;
    for (int j = 0; j < rows; ++j) {
      for (int i = 0; i < cols; ++i) {
        rowLoad[static_cast<std::size_t>(j)] += 0.05 + smoothed.at(i, j);
      }
      for (std::size_t l = 0; l < nl; ++l) {
        rowBytes[static_cast<std::size_t>(j)] +=
            store.count(rowWire[l][static_cast<std::size_t>(j)]) *
            sizeof(geom::Rect) * 4;  // buckets + blocked + regions overhead
      }
      totalLoad += rowLoad[static_cast<std::size_t>(j)];
      totalBytes += rowBytes[static_cast<std::size_t>(j)];
    }
    const std::uint64_t cap =
        std::max<std::uint64_t>(budgetBytes / 4, 1u << 20);
    if (options_.rowsPerShard > 0) {
      for (int j = options_.rowsPerShard; j < rows; j += options_.rowsPerShard) {
        shardEnd.push_back(j);
      }
      shardEnd.push_back(rows);
    } else {
      const int targetShards = std::max(
          1, std::min(rows, static_cast<int>((totalBytes + cap - 1) / cap)));
      const double loadPerShard = totalLoad / targetShards;
      double accLoad = 0.0;
      std::uint64_t accBytes = 0;
      for (int j = 0; j < rows; ++j) {
        accLoad += rowLoad[static_cast<std::size_t>(j)];
        accBytes += rowBytes[static_cast<std::size_t>(j)];
        if (j == rows - 1 || accBytes >= cap ||
            (targetShards > 1 && accLoad >= loadPerShard)) {
          shardEnd.push_back(j + 1);
          accLoad = 0.0;
          accBytes = 0;
        }
      }
    }
  }
  rep.shardCount = static_cast<int>(shardEnd.size());

  // --- Candidate pass (stage 2), shard by shard, row by row ---
  stage.reset();
  const CandidateGenerator generator(eng.rules, eng.candidate);
  prof::count(prof::Counter::kWindows, numWindows);
  if (obs::metricsEnabled()) {
    obs::MetricsRegistry::instance().counter("engine.windows").add(numWindows);
  }
  std::vector<std::vector<std::uint32_t>> candCounts(
      nl, std::vector<std::uint32_t>(numWindows, 0));
  {
    int startRow = 0;
    for (std::size_t s = 0; s < shardEnd.size(); ++s) {
      const int endRow = shardEnd[s];
      obs::ScopedSpan span(
          "shard.candidates", "engine",
          {{"job", jid}, {"shard", static_cast<double>(s)}});
      for (int j = startRow; j < endRow; ++j) {
        std::vector<WindowProblem> problems(static_cast<std::size_t>(cols));
        std::vector<std::vector<geom::Region>> rowRegions(
            nl, std::vector<geom::Region>(static_cast<std::size_t>(cols)));
        std::vector<std::vector<std::vector<geom::Rect>>> rowWires(
            nl), rowBlocked(nl);
        for (std::size_t l = 0; l < nl; ++l) {
          buildRowBuckets(l, j);
          rowWires[l] = wireBuckets;
          rowBlocked[l] = blockedBuckets;
          pool.parallelFor(static_cast<std::size_t>(cols), [&](std::size_t i) {
            prof::ScopedTimer timer(prof::Stage::kRegionPrep);
            const std::vector<geom::Rect> windowRects{
                grid.windowRect(static_cast<int>(i), j)};
            rowRegions[l][i] = geom::Region::fromDisjoint(geom::booleanOp(
                windowRects, rowBlocked[l][i], geom::BoolOp::kSubtract));
          });
        }
        pool.parallelFor(static_cast<std::size_t>(cols), [&](std::size_t i) {
          checkCancel(eng.cancel);
          const auto w = static_cast<std::size_t>(
              grid.flatIndex(static_cast<int>(i), j));
          WindowProblem& p = problems[i];
          p.window = grid.windowRect(static_cast<int>(i), j);
          p.fillRegions.reserve(nl);
          p.wires.reserve(nl);
          p.blocked.reserve(nl);
          for (std::size_t l = 0; l < nl; ++l) {
            p.fillRegions.push_back(rowRegions[l][i]);
            p.wires.push_back(rowWires[l][i]);
            p.blocked.push_back(rowBlocked[l][i]);
            p.wireDensity.push_back(wireDen[l][w]);
            p.targetDensity.push_back(plan.windowTarget[l][w]);
          }
          static thread_local CandidateGenerator::Scratch scratch;
          prof::ScopedTimer timer(prof::Stage::kCandidates);
          obs::ScopedSpan windowSpan(
              "window.candidates", "window",
              {{"job", jid}, {"w", static_cast<double>(w)}});
          generator.generate(p, scratch);
        });
        // Serial merge in window order: counts, stage-3 bound tightening,
        // and candidate spooling (flat window order across rows).
        for (int i = 0; i < cols; ++i) {
          const auto w = static_cast<std::size_t>(grid.flatIndex(i, j));
          const WindowProblem& p = problems[static_cast<std::size_t>(i)];
          const auto windowArea = static_cast<double>(p.window.area());
          for (std::size_t l = 0; l < nl; ++l) {
            const auto& fs = p.fills[l];
            rep.fill.candidateCount += fs.size();
            candCounts[l][w] = static_cast<std::uint32_t>(fs.size());
            geom::Area candidateArea = 0;
            for (const geom::Rect& f : fs) {
              candidateArea += f.area();
              store.append(candSpool[l], f);
            }
            const double reachable =
                windowArea > 0
                    ? p.wireDensity[l] +
                          static_cast<double>(candidateArea) / windowArea
                    : 0.0;
            auto& upper = bounds[l].upper;
            upper[w] = std::min(upper[w], reachable);
            upper[w] = std::max(upper[w], bounds[l].lower[w]);
          }
        }
      }
      startRow = endRow;
    }
  }
  rep.fill.candidateSeconds += stage.elapsedSeconds();
  checkCancel(eng.cancel);

  // --- Second planning round (stage 3) ---
  stage.reset();
  {
    prof::ScopedTimer timer(prof::Stage::kPlanning);
    obs::ScopedSpan span("engine.replanning", "engine", {{"job", jid}});
    plan = planner.plan(bounds, cols, rows);
  }
  rep.fill.layerTargets = plan.layerTarget;
  rep.fill.planningSeconds += stage.elapsedSeconds();

  // --- Sizing pass (stage 4), shard by shard ---
  stage.reset();
  const FillSizer sizer(eng.rules, eng.sizer);
  const bool telemetry = obs::metricsEnabled() || obs::Tracer::enabled();
  std::vector<std::vector<double>> finalDensity(
      telemetry ? nl : 0, std::vector<double>(numWindows, 0.0));
  std::vector<layout::ShardStore::Reader> candReaders;
  candReaders.reserve(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    candReaders.push_back(store.read(candSpool[l]));
  }
  {
    int startRow = 0;
    for (std::size_t s = 0; s < shardEnd.size(); ++s) {
      const int endRow = shardEnd[s];
      obs::ScopedSpan span("shard.sizing", "engine",
                           {{"job", jid}, {"shard", static_cast<double>(s)}});
      for (int j = startRow; j < endRow; ++j) {
        checkCancel(eng.cancel);
        std::vector<WindowProblem> problems(static_cast<std::size_t>(cols));
        std::vector<FillSizer::Stats> windowStats(
            static_cast<std::size_t>(cols));
        std::vector<std::vector<std::vector<geom::Rect>>> rowWires(nl);
        for (std::size_t l = 0; l < nl; ++l) {
          buildRowBuckets(l, j);
          rowWires[l] = wireBuckets;
        }
        // Serial assembly: candidates stream out of the per-layer spools
        // in the same flat window order they were deposited.
        for (int i = 0; i < cols; ++i) {
          const auto w = static_cast<std::size_t>(grid.flatIndex(i, j));
          WindowProblem& p = problems[static_cast<std::size_t>(i)];
          p.window = grid.windowRect(i, j);
          p.fills.resize(nl);
          for (std::size_t l = 0; l < nl; ++l) {
            p.wires.push_back(rowWires[l][static_cast<std::size_t>(i)]);
            p.wireDensity.push_back(wireDen[l][w]);
            p.targetDensity.push_back(plan.windowTarget[l][w]);
            auto& fills = p.fills[l];
            fills.resize(candCounts[l][w]);
            for (std::uint32_t c = 0; c < candCounts[l][w]; ++c) {
              if (!candReaders[l].next(fills[c])) {
                return setError(error, "candidate spool underrun");
              }
            }
          }
        }
        pool.parallelFor(static_cast<std::size_t>(cols), [&](std::size_t i) {
          checkCancel(eng.cancel);
          const auto w = static_cast<std::size_t>(
              grid.flatIndex(static_cast<int>(i), j));
          static thread_local FillSizer::Scratch scratch;
          prof::ScopedTimer timer(prof::Stage::kSizing);
          obs::ScopedSpan windowSpan(
              "window.sizing", "window",
              {{"job", jid}, {"w", static_cast<double>(w)}});
          sizer.size(problems[i], scratch, &windowStats[i]);
        });
        for (int i = 0; i < cols; ++i) {
          const auto w = static_cast<std::size_t>(grid.flatIndex(i, j));
          const WindowProblem& p = problems[static_cast<std::size_t>(i)];
          rep.fill.sizerStats.add(windowStats[static_cast<std::size_t>(i)]);
          const auto windowArea = static_cast<double>(p.window.area());
          for (std::size_t l = 0; l < nl; ++l) {
            geom::Area fillArea = 0;
            for (const geom::Rect& f : p.fills[l]) {
              fillArea += f.area();
              fillStore.append(fillSpool[l], f);
            }
            rep.fill.fillCount += p.fills[l].size();
            if (telemetry) {
              finalDensity[l][w] =
                  windowArea > 0
                      ? p.wireDensity[l] +
                            static_cast<double>(fillArea) / windowArea
                      : 0.0;
            }
          }
        }
        for (std::size_t l = 0; l < nl; ++l) {
          store.release(rowWire[l][static_cast<std::size_t>(j)]);
        }
      }
      startRow = endRow;
    }
  }
  rep.fill.sizingSeconds += stage.elapsedSeconds();

  // --- Output: streaming writer, toGds order (wires then fills, per
  // layer, single TOP cell) ---
  {
    prof::ScopedTimer timer(prof::Stage::kOutput);
    obs::ScopedSpan span("shard.output", "engine", {{"job", jid}});
    gds::StreamWriter writer(outputPath);
    if (!writer.ok()) return setError(error, "cannot write " + outputPath);
    writer.beginCell("TOP");
    geom::Rect r;
    for (std::size_t l = 0; l < nl; ++l) {
      const auto gdsLayer = static_cast<std::int16_t>(l + 1);
      layout::ShardStore::Reader wires = store.read(passWire[l]);
      while (wires.next(r)) writer.addRect(gdsLayer, r, /*datatype=*/0);
      layout::ShardStore::Reader fills = fillStore.read(fillSpool[l]);
      while (fills.next(r)) writer.addRect(gdsLayer, r, /*datatype=*/1);
    }
    writer.endCell();
    rep.outputBytes = writer.finish();
    if (rep.outputBytes < 0) {
      return setError(error, "write failed: " + outputPath);
    }
  }
  if (store.ioError() || fillStore.ioError()) {
    return setError(error, "spool IO error");
  }
  rep.spilledBytes = store.spilledBytes() + fillStore.spilledBytes();
  rep.spillEvents = store.spillEvents() + fillStore.spillEvents();

  // --- Telemetry: same per-window/per-layer quality records as run() ---
  if (telemetry) {
    for (std::size_t l = 0; l < nl; ++l) {
      for (std::size_t w = 0; w < numWindows; ++w) {
        obs::recordWindowQuality(
            static_cast<int>(l) + 1, finalDensity[l][w],
            std::abs(finalDensity[l][w] - plan.windowTarget[l][w]));
      }
      const density::DensityMap map(cols, rows, finalDensity[l]);
      const density::DensityMetrics m = density::computeMetrics(map);
      obs::recordLayerQuality(static_cast<int>(l) + 1, m.mean, m.sigma,
                              m.lineHotspot, m.outlierHotspot, eng.jobId);
    }
  }
  rep.fill.totalSeconds = total.elapsedSeconds();
  rep.fill.profile = prof::Registry::instance().snapshot();
  if (obs::metricsEnabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
    reg.counter("engine.runs").add();
    reg.counter("engine.candidates").add(rep.fill.candidateCount);
    reg.counter("engine.fills").add(rep.fill.fillCount);
    reg.counter("engine.mcf_warm_starts")
        .add(static_cast<std::uint64_t>(rep.fill.sizerStats.warmStarts));
    reg.counter("engine.mcf_early_exits")
        .add(static_cast<std::uint64_t>(rep.fill.sizerStats.earlyExits));
    reg.counter("engine.eco_windows_skipped").add(rep.fill.ecoWindowsSkipped);
    reg.histogram("engine.run_seconds").observe(rep.fill.totalSeconds);
    reg.counter("scale.runs").add();
    reg.counter("scale.shards").add(static_cast<std::uint64_t>(rep.shardCount));
    reg.counter("scale.spill_bytes").add(rep.spilledBytes);
    reg.counter("scale.spill_events").add(rep.spillEvents);
    reg.gauge("scale.rows").set(static_cast<double>(rep.rows));
    reg.gauge("scale.mem_budget_mib")
        .set(static_cast<double>(options_.memBudgetMiB));
    reg.histogram("scale.ingest_seconds").observe(rep.ingestSeconds);
    reg.histogram("scale.fft_seconds").observe(rep.fftSeconds);
  }
  logInfo("ShardedEngine: %zu fills from %zu candidates in %.2fs "
          "(%d shards, %d rows, %.1f MiB spilled, %d threads)",
          rep.fill.fillCount, rep.fill.candidateCount, rep.fill.totalSeconds,
          rep.shardCount, rep.rows,
          static_cast<double>(rep.spilledBytes) / (1 << 20),
          rep.fill.threadsUsed);
  return true;
}

}  // namespace ofl::fill
