#include "fill/candidate_generator.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "geometry/decompose.hpp"

namespace ofl::fill {
namespace {

// Tiles [lo, hi) with cells of exactly `size` at pitch size+gap; the
// remainder past the last full cell is dropped.
std::vector<geom::Interval> splitSpanFixed(geom::Coord lo, geom::Coord hi,
                                           geom::Coord size, geom::Coord gap) {
  std::vector<geom::Interval> out;
  for (geom::Coord cursor = lo; cursor + size <= hi; cursor += size + gap) {
    out.push_back({cursor, cursor + size});
  }
  return out;
}

// Splits [lo, hi) into equal cells no wider than maxSize with `gap` between
// them; returns cell intervals. Cells narrower than minSize are dropped.
// When the equal division lands below minSize (minSize close to maxSize),
// fall back to fixed maxSize-pitch tiling: that keeps every emitted cell
// within [minSize, maxSize] and keeps the gap between consecutive cells,
// instead of the single gap-ignoring cell the fallback used to emit.
std::vector<geom::Interval> splitSpan(geom::Coord lo, geom::Coord hi,
                                      geom::Coord maxSize, geom::Coord gap,
                                      geom::Coord minSize) {
  std::vector<geom::Interval> out;
  const geom::Coord span = hi - lo;
  if (span < minSize) return out;
  const auto k = static_cast<geom::Coord>(
      (span + gap + maxSize) / (maxSize + gap));  // ceil(span+gap / max+gap)
  const geom::Coord cells = std::max<geom::Coord>(k, 1);
  const geom::Coord cellSize = (span - (cells - 1) * gap) / cells;
  if (cellSize < minSize) {
    return splitSpanFixed(lo, hi, std::min(span, maxSize), gap);
  }
  geom::Coord cursor = lo;
  for (geom::Coord c = 0; c < cells; ++c) {
    out.push_back({cursor, cursor + cellSize});
    cursor += cellSize + gap;
  }
  return out;
}

// Total overlap of `rect` with shapes, brute force with bbox reject; shape
// lists here are window-local and small.
geom::Area overlapWith(const geom::Rect& rect,
                       const std::vector<geom::Rect>& shapes) {
  geom::Area total = 0;
  for (const geom::Rect& s : shapes) total += rect.overlapArea(s);
  return total;
}

}  // namespace

geom::Coord CandidateGenerator::gutter() const {
  geom::Coord g = rules_.minSpacing;
  if (options_.lithoAvoid.has_value() && g >= options_.lithoAvoid->forbiddenLo &&
      g < options_.lithoAvoid->forbiddenHi) {
    g = options_.lithoAvoid->forbiddenHi;
  }
  return g;
}

std::vector<geom::Rect> CandidateGenerator::sliceRegion(
    const geom::Region& region) const {
  return sliceRegion(region, rules_.maxFillSize);
}

std::vector<geom::Rect> CandidateGenerator::sliceRegion(
    const geom::Region& region, geom::Coord maxSize) const {
  std::vector<geom::Rect> candidates;
  const geom::Coord gap = gutter();
  const geom::Coord inset = (gap + 1) / 2;
  // Merge decomposed slabs vertically first: taller source rects yield
  // larger (fewer) candidates, which directly helps the file-size score.
  std::vector<geom::Rect> sources = geom::mergeVertical(region.rects());
  for (const geom::Rect& src : sources) {
    const geom::Rect r = src.expanded(-inset);
    if (r.empty() || r.width() < rules_.minWidth ||
        r.height() < rules_.minWidth) {
      continue;
    }
    const auto xs = options_.uniformCells
                        ? splitSpanFixed(r.xl, r.xh, maxSize, gap)
                        : splitSpan(r.xl, r.xh, maxSize, gap, rules_.minWidth);
    const auto ys = options_.uniformCells
                        ? splitSpanFixed(r.yl, r.yh, maxSize, gap)
                        : splitSpan(r.yl, r.yh, maxSize, gap, rules_.minWidth);
    for (const geom::Interval& ix : xs) {
      for (const geom::Interval& iy : ys) {
        const geom::Rect cell{ix.lo, iy.lo, ix.hi, iy.hi};
        if (rules_.shapeOk(cell)) candidates.push_back(cell);
      }
    }
  }
  return candidates;
}

void CandidateGenerator::generate(WindowProblem& problem) const {
  const int numLayers = static_cast<int>(problem.fillRegions.size());
  const auto windowArea = static_cast<double>(problem.window.area());
  problem.fills.assign(static_cast<std::size_t>(numLayers), {});
  if (windowArea <= 0) return;

  // Neighboring-layer shapes seen by the quality score: wires always,
  // candidates once chosen.
  auto neighborShapes = [&problem, numLayers](int layer) {
    std::vector<geom::Rect> shapes;
    for (int nb : {layer - 1, layer + 1}) {
      if (nb < 0 || nb >= numLayers) continue;
      const auto& w = problem.wires[static_cast<std::size_t>(nb)];
      const auto& f = problem.fills[static_cast<std::size_t>(nb)];
      shapes.insert(shapes.end(), w.begin(), w.end());
      shapes.insert(shapes.end(), f.begin(), f.end());
    }
    return shapes;
  };

  // Selection for area-ranked (odd) layers walks the ranked list
  // round-robin over a 3x3 spatial sub-grid of the window: best candidate
  // of each sub-cell first. Pure rank order would cluster fills in the
  // most open part of the window, which looks uniform at the fixed
  // dissection but shows up as spread in the multi-window (sliding)
  // analysis. Quality-ranked (even) layers take candidates in pure q
  // order: their ranking already encodes the overlay cost, which
  // dominates intra-window placement (Eqn. 8).
  auto takeSpatial = [&](int layer, std::vector<geom::Rect> ranked) {
    const double need =
        (options_.lambda * problem.targetDensity[static_cast<std::size_t>(layer)] -
         problem.wireDensity[static_cast<std::size_t>(layer)]) *
        windowArea;
    auto& out = problem.fills[static_cast<std::size_t>(layer)];
    constexpr int kGrid = 3;
    std::array<std::vector<std::size_t>, kGrid * kGrid> buckets;
    for (std::size_t c = 0; c < ranked.size(); ++c) {
      const geom::Coord cx = (ranked[c].xl + ranked[c].xh) / 2;
      const geom::Coord cy = (ranked[c].yl + ranked[c].yh) / 2;
      const auto bi = std::min<geom::Coord>(
          kGrid - 1, (cx - problem.window.xl) * kGrid /
                         std::max<geom::Coord>(problem.window.width(), 1));
      const auto bj = std::min<geom::Coord>(
          kGrid - 1, (cy - problem.window.yl) * kGrid /
                         std::max<geom::Coord>(problem.window.height(), 1));
      buckets[static_cast<std::size_t>(bj * kGrid + bi)].push_back(c);
    }
    std::array<std::size_t, kGrid * kGrid> cursor{};
    double got = 0.0;
    bool any = true;
    while (got < need && any) {
      any = false;
      for (std::size_t b = 0; b < buckets.size() && got < need; ++b) {
        if (cursor[b] >= buckets[b].size()) continue;
        const geom::Rect& c = ranked[buckets[b][cursor[b]++]];
        out.push_back(c);
        got += static_cast<double>(c.area());
        any = true;
      }
    }
  };

  auto takeRanked = [&](int layer, const std::vector<geom::Rect>& ranked) {
    const double need =
        (options_.lambda * problem.targetDensity[static_cast<std::size_t>(layer)] -
         problem.wireDensity[static_cast<std::size_t>(layer)]) *
        windowArea;
    auto& out = problem.fills[static_cast<std::size_t>(layer)];
    double got = 0.0;
    for (const geom::Rect& c : ranked) {
      if (got >= need) break;
      out.push_back(c);
      got += static_cast<double>(c.area());
    }
  };

  // --- Odd layers first (Alg. 1 lines 9-19; paper's 1-indexed odd layers
  // are our even indices 0, 2, ...). ---
  for (int l = 0; l < numLayers; l += 2) {
    const auto& fr = problem.fillRegions[static_cast<std::size_t>(l)];
    std::vector<geom::Rect> ranked;
    if (l + 1 < numLayers) {
      const geom::Region shared =
          fr.intersect(problem.fillRegions[static_cast<std::size_t>(l + 1)]);
      const double dgSum =
          std::max(0.0, problem.targetDensity[static_cast<std::size_t>(l)] -
                            problem.wireDensity[static_cast<std::size_t>(l)]) +
          std::max(0.0,
                   problem.targetDensity[static_cast<std::size_t>(l + 1)] -
                       problem.wireDensity[static_cast<std::size_t>(l + 1)]);
      if (static_cast<double>(shared.area()) >= dgSum * windowArea) {
        // Case I (Fig. 4): both layers fit inside the shared free space;
        // restrict this layer's candidates to it so the even pass can
        // dodge them for zero fill-to-fill overlay.
        ranked = sliceRegion(shared);
      }
    }
    if (ranked.empty()) {
      // Case II (Fig. 5) or topmost layer: use the whole fill region,
      // biggest candidates first (Alg. 1 line 16).
      ranked = sliceRegion(fr);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const geom::Rect& a, const geom::Rect& b) {
                if (a.area() != b.area()) return a.area() > b.area();
                return geom::RectYXLess{}(a, b);
              });
    takeSpatial(l, std::move(ranked));
  }

  // --- Even layers by quality score (Alg. 1 lines 20-24). ---
  for (int l = 1; l < numLayers; l += 2) {
    const auto& fr = problem.fillRegions[static_cast<std::size_t>(l)];
    std::vector<geom::Rect> candidates = sliceRegion(fr);
    const std::vector<geom::Rect> neighbors = neighborShapes(l);
    std::vector<std::pair<double, std::size_t>> scored;
    scored.reserve(candidates.size());
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const auto area = static_cast<double>(candidates[c].area());
      const auto overlay =
          static_cast<double>(overlapWith(candidates[c], neighbors));
      const double q =
          -overlay / area + options_.gamma * area / windowArea;  // Eqn. (8)
      scored.push_back({q, c});
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<geom::Rect> ranked;
    ranked.reserve(scored.size());
    for (const auto& [q, c] : scored) ranked.push_back(candidates[c]);
    takeRanked(l, std::move(ranked));
  }

  // Hierarchical refinement: a window whose big-cell candidates fall short
  // of lambda * target gets a small-cell backfill in the remaining free
  // space. Deficits here would otherwise cap the second planning round's
  // upper bound and drag the whole layer's achievable uniformity down.
  const geom::Coord smallSize =
      std::max<geom::Coord>(3 * rules_.minWidth, rules_.maxFillSize / 8);
  for (int l = 0; l < numLayers; ++l) {
    auto& chosen = problem.fills[static_cast<std::size_t>(l)];
    double got = 0.0;
    for (const geom::Rect& f : chosen) got += static_cast<double>(f.area());
    const double need =
        (options_.lambda * problem.targetDensity[static_cast<std::size_t>(l)] -
         problem.wireDensity[static_cast<std::size_t>(l)]) *
        windowArea;
    if (got >= need) continue;
    std::vector<geom::Rect> blockers;
    blockers.reserve(chosen.size());
    for (const geom::Rect& f : chosen) {
      blockers.push_back(f.expanded(rules_.minSpacing));
    }
    const geom::Region leftover =
        problem.fillRegions[static_cast<std::size_t>(l)].subtract(
            geom::Region(blockers));
    std::vector<geom::Rect> cells = sliceRegion(leftover, smallSize);
    std::sort(cells.begin(), cells.end(),
              [](const geom::Rect& a, const geom::Rect& b) {
                if (a.area() != b.area()) return a.area() > b.area();
                return geom::RectYXLess{}(a, b);
              });
    for (const geom::Rect& c : cells) {
      if (got >= need) break;
      chosen.push_back(c);
      got += static_cast<double>(c.area());
    }
  }
}

}  // namespace ofl::fill
