#include "fill/candidate_generator.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "common/prof.hpp"
#include "geometry/boolean.hpp"
#include "geometry/decompose.hpp"

namespace ofl::fill {
namespace {

// Tiles [lo, hi) with cells of exactly `size` at pitch size+gap; the
// remainder past the last full cell is dropped.
void splitSpanFixedInto(geom::Coord lo, geom::Coord hi, geom::Coord size,
                        geom::Coord gap, std::vector<geom::Interval>& out) {
  out.clear();
  for (geom::Coord cursor = lo; cursor + size <= hi; cursor += size + gap) {
    out.push_back({cursor, cursor + size});
  }
}

// Splits [lo, hi) into equal cells no wider than maxSize with `gap` between
// them; emits cell intervals. Cells narrower than minSize are dropped.
// When the equal division lands below minSize (minSize close to maxSize),
// fall back to fixed maxSize-pitch tiling: that keeps every emitted cell
// within [minSize, maxSize] and keeps the gap between consecutive cells,
// instead of the single gap-ignoring cell the fallback used to emit.
void splitSpanInto(geom::Coord lo, geom::Coord hi, geom::Coord maxSize,
                   geom::Coord gap, geom::Coord minSize,
                   std::vector<geom::Interval>& out) {
  out.clear();
  const geom::Coord span = hi - lo;
  if (span < minSize) return;
  const auto k = static_cast<geom::Coord>(
      (span + gap + maxSize) / (maxSize + gap));  // ceil(span+gap / max+gap)
  const geom::Coord cells = std::max<geom::Coord>(k, 1);
  const geom::Coord cellSize = (span - (cells - 1) * gap) / cells;
  if (cellSize < minSize) {
    splitSpanFixedInto(lo, hi, std::min(span, maxSize), gap, out);
    return;
  }
  geom::Coord cursor = lo;
  for (geom::Coord c = 0; c < cells; ++c) {
    out.push_back({cursor, cursor + cellSize});
    cursor += cellSize + gap;
  }
}

// Allocating wrappers used by the baseline (pre-optimization) slice path.
std::vector<geom::Interval> splitSpanFixed(geom::Coord lo, geom::Coord hi,
                                           geom::Coord size,
                                           geom::Coord gap) {
  std::vector<geom::Interval> out;
  splitSpanFixedInto(lo, hi, size, gap, out);
  return out;
}

std::vector<geom::Interval> splitSpan(geom::Coord lo, geom::Coord hi,
                                      geom::Coord maxSize, geom::Coord gap,
                                      geom::Coord minSize) {
  std::vector<geom::Interval> out;
  splitSpanInto(lo, hi, maxSize, gap, minSize, out);
  return out;
}

// Below this many neighbor shapes the brute-force Eqn. 8 scan beats the
// index build; both paths sum the same integers, so this is purely a
// performance threshold, never a results switch.
constexpr std::size_t kIndexMinShapes = 16;

}  // namespace

geom::Coord CandidateGenerator::gutter() const {
  geom::Coord g = rules_.minSpacing;
  if (options_.lithoAvoid.has_value() && g >= options_.lithoAvoid->forbiddenLo &&
      g < options_.lithoAvoid->forbiddenHi) {
    g = options_.lithoAvoid->forbiddenHi;
  }
  return g;
}

std::vector<geom::Rect> CandidateGenerator::sliceRegion(
    const geom::Region& region) const {
  return sliceRegion(region, rules_.maxFillSize);
}

std::vector<geom::Rect> CandidateGenerator::sliceRegion(
    const geom::Region& region, geom::Coord maxSize) const {
  std::vector<geom::Rect> candidates;
  sliceRegionInto(region.rects(), maxSize, candidates);
  return candidates;
}

void CandidateGenerator::sliceRegionInto(std::span<const geom::Rect> rects,
                                         geom::Coord maxSize,
                                         std::vector<geom::Rect>& candidates,
                                         Scratch* scratch) const {
  prof::ScopedTimer timer(prof::Stage::kCandidateSlice);
  candidates.clear();
  const geom::Coord gap = gutter();
  const geom::Coord inset = (gap + 1) / 2;
  auto emitCells = [&](const std::vector<geom::Interval>& xs,
                       const std::vector<geom::Interval>& ys) {
    for (const geom::Interval& ix : xs) {
      for (const geom::Interval& iy : ys) {
        const geom::Rect cell{ix.lo, iy.lo, ix.hi, iy.hi};
        if (rules_.shapeOk(cell)) candidates.push_back(cell);
      }
    }
  };
  // Merge decomposed slabs vertically first: taller source rects yield
  // larger (fewer) candidates, which directly helps the file-size score.
  if (scratch == nullptr) {
    // Baseline path, allocation pattern kept as the pre-optimization
    // pipeline (bench_hotpath's brute config): fresh buffers per source.
    const std::vector<geom::Rect> sources =
        geom::mergeVertical({rects.begin(), rects.end()});
    for (const geom::Rect& src : sources) {
      const geom::Rect r = src.expanded(-inset);
      if (r.empty() || r.width() < rules_.minWidth ||
          r.height() < rules_.minWidth) {
        continue;
      }
      const auto xs =
          options_.uniformCells
              ? splitSpanFixed(r.xl, r.xh, maxSize, gap)
              : splitSpan(r.xl, r.xh, maxSize, gap, rules_.minWidth);
      const auto ys =
          options_.uniformCells
              ? splitSpanFixed(r.yl, r.yh, maxSize, gap)
              : splitSpan(r.yl, r.yh, maxSize, gap, rules_.minWidth);
      emitCells(xs, ys);
    }
    return;
  }
  scratch->sliceSources.assign(rects.begin(), rects.end());
  geom::mergeVerticalInPlace(scratch->sliceSources);
  for (const geom::Rect& src : scratch->sliceSources) {
    const geom::Rect r = src.expanded(-inset);
    if (r.empty() || r.width() < rules_.minWidth ||
        r.height() < rules_.minWidth) {
      continue;
    }
    if (options_.uniformCells) {
      splitSpanFixedInto(r.xl, r.xh, maxSize, gap, scratch->sliceXs);
      splitSpanFixedInto(r.yl, r.yh, maxSize, gap, scratch->sliceYs);
    } else {
      splitSpanInto(r.xl, r.xh, maxSize, gap, rules_.minWidth,
                    scratch->sliceXs);
      splitSpanInto(r.yl, r.yh, maxSize, gap, rules_.minWidth,
                    scratch->sliceYs);
    }
    emitCells(scratch->sliceXs, scratch->sliceYs);
  }
}

void CandidateGenerator::generate(WindowProblem& problem) const {
  Scratch scratch;
  generate(problem, scratch);
}

void CandidateGenerator::generate(WindowProblem& problem,
                                  Scratch& scratch) const {
  const int numLayers = static_cast<int>(problem.fillRegions.size());
  const auto windowArea = static_cast<double>(problem.window.area());
  problem.fills.assign(static_cast<std::size_t>(numLayers), {});
  if (windowArea <= 0) return;

  // Buffer reuse inside slicing rides with the optimized kernels; the
  // baseline allocates per call like the pre-optimization pipeline.
  Scratch* const slicing = options_.spatialIndex ? &scratch : nullptr;

  // Neighboring-layer shapes seen by the quality score: wires always,
  // candidates once chosen. NOTE: the combined set legitimately self-
  // overlaps (a point can be covered from both the layer below and the
  // layer above); Eqn. 8 couples to each neighbor shape, so the pairwise
  // sum — not the covered area — is the intended overlay.
  auto neighborShapes = [&problem, numLayers](int layer,
                                              std::vector<geom::Rect>& shapes) {
    shapes.clear();
    for (int nb : {layer - 1, layer + 1}) {
      if (nb < 0 || nb >= numLayers) continue;
      const auto& w = problem.wires[static_cast<std::size_t>(nb)];
      const auto& f = problem.fills[static_cast<std::size_t>(nb)];
      shapes.insert(shapes.end(), w.begin(), w.end());
      shapes.insert(shapes.end(), f.begin(), f.end());
    }
  };

  // Selection for area-ranked (odd) layers walks the ranked list
  // round-robin over a 3x3 spatial sub-grid of the window: best candidate
  // of each sub-cell first. Pure rank order would cluster fills in the
  // most open part of the window, which looks uniform at the fixed
  // dissection but shows up as spread in the multi-window (sliding)
  // analysis. Quality-ranked (even) layers take candidates in pure q
  // order: their ranking already encodes the overlay cost, which
  // dominates intra-window placement (Eqn. 8).
  auto takeSpatial = [&](int layer, const std::vector<geom::Rect>& ranked) {
    const double need =
        (options_.lambda * problem.targetDensity[static_cast<std::size_t>(layer)] -
         problem.wireDensity[static_cast<std::size_t>(layer)]) *
        windowArea;
    auto& out = problem.fills[static_cast<std::size_t>(layer)];
    constexpr int kGrid = 3;
    // Optimized path reuses the scratch bucket vectors; the baseline
    // allocates all nine per call like the pre-optimization pipeline.
    std::array<std::vector<std::size_t>, kGrid * kGrid> local;
    auto& buckets = options_.spatialIndex ? scratch.takeBuckets : local;
    if (options_.spatialIndex) {
      for (auto& b : buckets) b.clear();
    }
    for (std::size_t c = 0; c < ranked.size(); ++c) {
      const geom::Coord cx = (ranked[c].xl + ranked[c].xh) / 2;
      const geom::Coord cy = (ranked[c].yl + ranked[c].yh) / 2;
      const auto bi = std::min<geom::Coord>(
          kGrid - 1, (cx - problem.window.xl) * kGrid /
                         std::max<geom::Coord>(problem.window.width(), 1));
      const auto bj = std::min<geom::Coord>(
          kGrid - 1, (cy - problem.window.yl) * kGrid /
                         std::max<geom::Coord>(problem.window.height(), 1));
      buckets[static_cast<std::size_t>(bj * kGrid + bi)].push_back(c);
    }
    std::array<std::size_t, kGrid * kGrid> cursor{};
    double got = 0.0;
    bool any = true;
    while (got < need && any) {
      any = false;
      for (std::size_t b = 0; b < buckets.size() && got < need; ++b) {
        if (cursor[b] >= buckets[b].size()) continue;
        const geom::Rect& c = ranked[buckets[b][cursor[b]++]];
        out.push_back(c);
        got += static_cast<double>(c.area());
        any = true;
      }
    }
  };

  auto takeRanked = [&](int layer, const std::vector<geom::Rect>& ranked) {
    const double need =
        (options_.lambda * problem.targetDensity[static_cast<std::size_t>(layer)] -
         problem.wireDensity[static_cast<std::size_t>(layer)]) *
        windowArea;
    auto& out = problem.fills[static_cast<std::size_t>(layer)];
    double got = 0.0;
    for (const geom::Rect& c : ranked) {
      if (got >= need) break;
      out.push_back(c);
      got += static_cast<double>(c.area());
    }
  };

  // --- Odd layers first (Alg. 1 lines 9-19; paper's 1-indexed odd layers
  // are our even indices 0, 2, ...). ---
  for (int l = 0; l < numLayers; l += 2) {
    const auto& fr = problem.fillRegions[static_cast<std::size_t>(l)];
    auto& ranked = scratch.ranked;
    ranked.clear();
    if (l + 1 < numLayers) {
      geom::Region shared;
      bool caseI = false;
      bool sharedInScratch = false;
      {
        prof::ScopedTimer regionTimer(prof::Stage::kCandidateRegion);
        const double dgSum =
            std::max(0.0,
                     problem.targetDensity[static_cast<std::size_t>(l)] -
                         problem.wireDensity[static_cast<std::size_t>(l)]) +
            std::max(0.0,
                     problem.targetDensity[static_cast<std::size_t>(l + 1)] -
                         problem.wireDensity[static_cast<std::size_t>(l + 1)]);
        const auto& frUp = problem.fillRegions[static_cast<std::size_t>(l + 1)];
        const double needArea = dgSum * windowArea;
        if (!options_.spatialIndex) {
          // Baseline path, kept exactly as the pre-optimization pipeline
          // (bench_hotpath's brute config): unconditional tree-kernel
          // intersection.
          shared = fr.intersect(frUp, geom::SweepKernel::kTree);
          caseI = static_cast<double>(shared.area()) >= needArea;
        } else if (static_cast<double>(std::min(fr.area(), frUp.area())) >=
                   needArea) {
          // Optimized path. The shared region is contained in both
          // layers' fill regions, so either layer's area upper-bounds it;
          // when the bound already fails Case I, skip the sweep entirely
          // (ranked stays empty and Case II below takes over, exactly as
          // if shared had been computed and found too small).
          if (problem.blocked.size() == static_cast<std::size_t>(numLayers)) {
            // Both fill regions are "window minus inflated wires"
            // (WindowProblem::blocked), so their intersection covers
            // window minus the union of BOTH blocker sets -- one subtract
            // sweep over the few source shapes instead of intersecting
            // the two many-slab decompositions. Identical result: the
            // sweep's canonical decomposition is a pure function of the
            // covered point set.
            auto& blk = scratch.blockers;
            const auto& lo = problem.blocked[static_cast<std::size_t>(l)];
            const auto& up = problem.blocked[static_cast<std::size_t>(l + 1)];
            blk.clear();
            blk.reserve(lo.size() + up.size());
            blk.insert(blk.end(), lo.begin(), lo.end());
            blk.insert(blk.end(), up.begin(), up.end());
            // Unsorted sweep output into a reused buffer: slicing sorts
            // its own merged copy, so the canonical Region sort (and the
            // Region wrapper itself) would be pure overhead here.
            geom::booleanOpInto({&problem.window, 1}, blk,
                                geom::BoolOp::kSubtract, scratch.sharedRects);
            sharedInScratch = true;
            geom::Area sharedArea = 0;
            for (const geom::Rect& r : scratch.sharedRects) {
              sharedArea += r.area();
            }
            caseI = static_cast<double>(sharedArea) >= needArea;
          } else {
            // Hand-built problems carry no blocker lists; intersect the
            // decompositions on the flat kernel instead.
            shared = fr.intersect(frUp);
            caseI = static_cast<double>(shared.area()) >= needArea;
          }
        }
      }
      if (caseI) {
        // Case I (Fig. 4): both layers fit inside the shared free space;
        // restrict this layer's candidates to it so the even pass can
        // dodge them for zero fill-to-fill overlay.
        sliceRegionInto(sharedInScratch
                            ? std::span<const geom::Rect>(scratch.sharedRects)
                            : std::span<const geom::Rect>(shared.rects()),
                        rules_.maxFillSize, ranked, slicing);
      }
    }
    if (ranked.empty()) {
      // Case II (Fig. 5) or topmost layer: use the whole fill region,
      // biggest candidates first (Alg. 1 line 16).
      sliceRegionInto(fr.rects(), rules_.maxFillSize, ranked, slicing);
    }
    prof::count(prof::Counter::kCandidates, ranked.size());
    std::sort(ranked.begin(), ranked.end(),
              [](const geom::Rect& a, const geom::Rect& b) {
                if (a.area() != b.area()) return a.area() > b.area();
                return geom::RectYXLess{}(a, b);
              });
    takeSpatial(l, ranked);
  }

  // --- Even layers by quality score (Alg. 1 lines 20-24). ---
  for (int l = 1; l < numLayers; l += 2) {
    const auto& fr = problem.fillRegions[static_cast<std::size_t>(l)];
    auto& candidates = scratch.candidates;
    sliceRegionInto(fr.rects(), rules_.maxFillSize, candidates, slicing);
    prof::count(prof::Counter::kCandidates, candidates.size());
    auto& neighbors = scratch.neighbors;
    neighborShapes(l, neighbors);

    prof::ScopedTimer scoreTimer(prof::Stage::kCandidateScore);
    const bool indexed =
        options_.spatialIndex && neighbors.size() >= kIndexMinShapes;
    if (indexed) {
      scratch.neighborIndex.reset(
          problem.window,
          geom::windowCellSize(problem.window, rules_.maxFillSize));
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        if (neighbors[i].empty()) continue;  // zero overlay either way
        scratch.neighborIndex.insert(static_cast<std::uint32_t>(i),
                                     neighbors[i]);
      }
      prof::count(prof::Counter::kIndexBuilds);
      prof::count(prof::Counter::kIndexQueries, candidates.size());
    }
    auto& scored = scratch.scored;
    scored.clear();
    scored.reserve(candidates.size());
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const auto area = static_cast<double>(candidates[c].area());
      geom::Area overlaySum = 0;
      if (indexed) {
        // Same pairwise sum as the brute scan: shapes the index never
        // visits cannot overlap the candidate, so they only drop zero
        // terms; integer addition commutes over the rest.
        scratch.neighborIndex.visit(
            candidates[c], [&](std::uint32_t id) {
              overlaySum += candidates[c].overlapArea(neighbors[id]);
            });
      } else {
        overlaySum = geom::overlapAreaSum(candidates[c], neighbors);
      }
      const auto overlay = static_cast<double>(overlaySum);
      const double q =
          -overlay / area + options_.gamma * area / windowArea;  // Eqn. (8)
      scored.push_back({q, c});
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    auto& ranked = scratch.ranked;
    ranked.clear();
    ranked.reserve(scored.size());
    for (const auto& [q, c] : scored) ranked.push_back(candidates[c]);
    takeRanked(l, ranked);
  }

  // Hierarchical refinement: a window whose big-cell candidates fall short
  // of lambda * target gets a small-cell backfill in the remaining free
  // space. Deficits here would otherwise cap the second planning round's
  // upper bound and drag the whole layer's achievable uniformity down.
  const geom::Coord smallSize =
      std::max<geom::Coord>(3 * rules_.minWidth, rules_.maxFillSize / 8);
  prof::ScopedTimer refineTimer(prof::Stage::kCandidateRefine);
  for (int l = 0; l < numLayers; ++l) {
    auto& chosen = problem.fills[static_cast<std::size_t>(l)];
    double got = 0.0;
    for (const geom::Rect& f : chosen) got += static_cast<double>(f.area());
    const double need =
        (options_.lambda * problem.targetDensity[static_cast<std::size_t>(l)] -
         problem.wireDensity[static_cast<std::size_t>(l)]) *
        windowArea;
    if (got >= need) continue;
    auto& blockers = scratch.blockers;
    blockers.clear();
    blockers.reserve(chosen.size());
    for (const geom::Rect& f : chosen) {
      blockers.push_back(f.expanded(rules_.minSpacing));
    }
    // Optimized path: the span overload runs one flat-kernel boolean
    // sweep instead of normalize + subtract (expanded blockers overlap
    // each other heavily, so the Region() normalization pass it skips is
    // nearly as big as the subtract itself). The baseline keeps the
    // pre-optimization normalize + tree-kernel subtract. Byte-identical
    // either way.
    const auto& region = problem.fillRegions[static_cast<std::size_t>(l)];
    const geom::Region leftover =
        options_.spatialIndex
            ? region.subtract(std::span<const geom::Rect>(blockers))
            : region.subtract(
                  geom::Region(blockers, geom::SweepKernel::kTree),
                  geom::SweepKernel::kTree);
    std::vector<geom::Rect>& cells = scratch.candidates;
    sliceRegionInto(leftover.rects(), smallSize, cells, slicing);
    std::sort(cells.begin(), cells.end(),
              [](const geom::Rect& a, const geom::Rect& b) {
                if (a.area() != b.area()) return a.area() > b.area();
                return geom::RectYXLess{}(a, b);
              });
    for (const geom::Rect& c : cells) {
      if (got >= need) break;
      chosen.push_back(c);
      got += static_cast<double>(c.area());
    }
  }
}

}  // namespace ofl::fill
