// Candidate fill generation (paper Section 3.2, Alg. 1).
//
// Works window-by-window. Odd layers are filled first: when the free-space
// intersection with the layer above is large enough (Case I, Fig. 4), odd-
// layer candidates come from that shared region so the subsequent even-
// layer pass can avoid them entirely (zero fill-to-fill overlay);
// otherwise (Case II, Fig. 5) candidates are ranked by area. Even layers
// rank candidates by the quality score
//     q = -overlay/area + gamma * area/windowArea          (Eqn. 8)
// against wires and the already-chosen odd-layer candidates. Each layer
// takes candidates until density reaches lambda * target (lambda >= 1).
#pragma once

#include <array>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "geometry/grid_index.hpp"
#include "geometry/region.hpp"
#include "layout/design_rules.hpp"
#include "layout/litho.hpp"

namespace ofl::fill {

/// All per-window state the fill stages operate on. Built by FillEngine,
/// filled in by CandidateGenerator, resized in place by FillSizer.
struct WindowProblem {
  geom::Rect window;
  // Indexed by layer:
  std::vector<geom::Region> fillRegions;          // free space
  std::vector<std::vector<geom::Rect>> wires;     // clipped to window
  std::vector<double> wireDensity;                // dw(l)
  std::vector<double> targetDensity;              // dt(l)
  std::vector<std::vector<geom::Rect>> fills;     // candidates -> final
  /// Inflated-wire clips the fill regions were derived from (see
  /// layout::computeFillRegions): fillRegions[l] covers exactly `window`
  /// minus the union of blocked[l]. Optional — the generator's
  /// shared-region kernel uses it when present (engine-built problems)
  /// and falls back to region intersection when empty (hand-built ones).
  std::vector<std::vector<geom::Rect>> blocked;
};

class CandidateGenerator {
 public:
  struct Options {
    double lambda = 1.15;  // over-generation factor (Alg. 1, lambda >= 1)
    double gamma = 1.0;    // area reward weight in Eqn. (8)
    /// Lithography extension (paper future work): when set, slicing
    /// gutters that would land in the forbidden-pitch band are widened
    /// past it, so candidate fills never face each other at a
    /// litho-hostile gap. Best-effort: gaps across distinct free-space
    /// fragments follow the existing geometry.
    std::optional<layout::LithoRules> lithoAvoid;
    /// Industrial "fill cell" mode: slice free space into FIXED
    /// maxFillSize x maxFillSize cells (dropping remainders) instead of
    /// equal span divisions. Cells then repeat exactly, so hierarchical
    /// output (layout::toCompactGds) collapses them into AREF arrays —
    /// trading some achievable density for much smaller files.
    bool uniformCells = false;
    /// Score Eqn. 8 overlays through a per-window GridIndex instead of
    /// scanning every neighbor shape per candidate. Byte-identical output
    /// (integer overlap sums commute; shapes the index skips contribute
    /// zero); kept toggleable for the equivalence tests and benchmarks.
    bool spatialIndex = true;
  };

  /// Reusable buffers for generate(). One Scratch per worker thread;
  /// every field is overwritten window by window, so across a layer sweep
  /// the allocations amortize to (roughly) the largest window's needs.
  struct Scratch {
    geom::GridIndex neighborIndex;
    std::vector<geom::Rect> neighbors;
    std::vector<geom::Rect> candidates;
    std::vector<geom::Rect> blockers;
    std::vector<std::pair<double, std::size_t>> scored;
    std::vector<geom::Rect> ranked;
    // sliceRegionInto work buffers (merged sources, per-axis cell spans).
    std::vector<geom::Rect> sliceSources;
    std::vector<geom::Interval> sliceXs;
    std::vector<geom::Interval> sliceYs;
    // Case-I shared-region sweep output (unsorted; slicing sorts its own
    // merged copy) and the 3x3 spatial-selection buckets.
    std::vector<geom::Rect> sharedRects;
    std::array<std::vector<std::size_t>, 9> takeBuckets;
  };

  /// The slicing gutter after litho adjustment (minSpacing, widened out of
  /// the forbidden band when lithoAvoid is set).
  geom::Coord gutter() const;

  CandidateGenerator(layout::DesignRules rules, Options options)
      : rules_(rules), options_(options) {}

  /// Populates problem.fills for every layer.
  void generate(WindowProblem& problem) const;

  /// Same, reusing caller-owned scratch buffers across calls (the engine
  /// keeps one Scratch per worker thread).
  void generate(WindowProblem& problem, Scratch& scratch) const;

  /// Slices a free-space region into DRC-clean candidate rects: each
  /// decomposed sub-rect is inset by minSpacing/2 (so candidates from
  /// different sub-rects keep their distance) and gridded into cells of at
  /// most maxFillSize (or `maxSize` when given) with minSpacing gutters.
  /// Exposed for tests.
  std::vector<geom::Rect> sliceRegion(const geom::Region& region) const;
  std::vector<geom::Rect> sliceRegion(const geom::Region& region,
                                      geom::Coord maxSize) const;

 private:
  /// Slices a disjoint rect set (a Region's rects, or a raw sweep output —
  /// slicing sorts its own merged copy, so input order does not matter)
  /// into `out`. With `scratch`, the merge/split work buffers are reused
  /// across calls (the optimized per-window path); without, each call
  /// allocates them afresh like the pre-optimization pipeline.
  void sliceRegionInto(std::span<const geom::Rect> rects, geom::Coord maxSize,
                       std::vector<geom::Rect>& out,
                       Scratch* scratch = nullptr) const;

  layout::DesignRules rules_;
  Options options_;
};

}  // namespace ofl::fill
