// Candidate fill generation (paper Section 3.2, Alg. 1).
//
// Works window-by-window. Odd layers are filled first: when the free-space
// intersection with the layer above is large enough (Case I, Fig. 4), odd-
// layer candidates come from that shared region so the subsequent even-
// layer pass can avoid them entirely (zero fill-to-fill overlay);
// otherwise (Case II, Fig. 5) candidates are ranked by area. Even layers
// rank candidates by the quality score
//     q = -overlay/area + gamma * area/windowArea          (Eqn. 8)
// against wires and the already-chosen odd-layer candidates. Each layer
// takes candidates until density reaches lambda * target (lambda >= 1).
#pragma once

#include <optional>
#include <vector>

#include "geometry/region.hpp"
#include "layout/design_rules.hpp"
#include "layout/litho.hpp"

namespace ofl::fill {

/// All per-window state the fill stages operate on. Built by FillEngine,
/// filled in by CandidateGenerator, resized in place by FillSizer.
struct WindowProblem {
  geom::Rect window;
  // Indexed by layer:
  std::vector<geom::Region> fillRegions;          // free space
  std::vector<std::vector<geom::Rect>> wires;     // clipped to window
  std::vector<double> wireDensity;                // dw(l)
  std::vector<double> targetDensity;              // dt(l)
  std::vector<std::vector<geom::Rect>> fills;     // candidates -> final
};

class CandidateGenerator {
 public:
  struct Options {
    double lambda = 1.15;  // over-generation factor (Alg. 1, lambda >= 1)
    double gamma = 1.0;    // area reward weight in Eqn. (8)
    /// Lithography extension (paper future work): when set, slicing
    /// gutters that would land in the forbidden-pitch band are widened
    /// past it, so candidate fills never face each other at a
    /// litho-hostile gap. Best-effort: gaps across distinct free-space
    /// fragments follow the existing geometry.
    std::optional<layout::LithoRules> lithoAvoid;
    /// Industrial "fill cell" mode: slice free space into FIXED
    /// maxFillSize x maxFillSize cells (dropping remainders) instead of
    /// equal span divisions. Cells then repeat exactly, so hierarchical
    /// output (layout::toCompactGds) collapses them into AREF arrays —
    /// trading some achievable density for much smaller files.
    bool uniformCells = false;
  };

  /// The slicing gutter after litho adjustment (minSpacing, widened out of
  /// the forbidden band when lithoAvoid is set).
  geom::Coord gutter() const;

  CandidateGenerator(layout::DesignRules rules, Options options)
      : rules_(rules), options_(options) {}

  /// Populates problem.fills for every layer.
  void generate(WindowProblem& problem) const;

  /// Slices a free-space region into DRC-clean candidate rects: each
  /// decomposed sub-rect is inset by minSpacing/2 (so candidates from
  /// different sub-rects keep their distance) and gridded into cells of at
  /// most maxFillSize (or `maxSize` when given) with minSpacing gutters.
  /// Exposed for tests.
  std::vector<geom::Rect> sliceRegion(const geom::Region& region) const;
  std::vector<geom::Rect> sliceRegion(const geom::Region& region,
                                      geom::Coord maxSize) const;

 private:
  layout::DesignRules rules_;
  Options options_;
};

}  // namespace ofl::fill
