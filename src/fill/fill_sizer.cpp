#include "fill/fill_sizer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "common/prof.hpp"
#include "lp/simplex.hpp"

namespace ofl::fill {
namespace {

using geom::Area;
using geom::Coord;
using geom::Rect;

// Below this many shapes in play, brute-force scans beat index builds;
// both paths compute identical integers, so this is a performance
// threshold only, never a results switch.
constexpr std::size_t kIndexMinShapes = 16;

// Axis abstraction: `horizontal` passes size x-extents with y frozen;
// vertical passes swap the roles.
struct AxisView {
  bool horizontal;
  Coord lo(const Rect& r) const { return horizontal ? r.xl : r.yl; }
  Coord hi(const Rect& r) const { return horizontal ? r.xh : r.yh; }
  Coord frozenLen(const Rect& r) const {
    return horizontal ? r.height() : r.width();
  }
  // Overlap extent in the frozen axis between two rects.
  Coord frozenOverlap(const Rect& a, const Rect& b) const {
    const Coord o = horizontal
                        ? std::min(a.yh, b.yh) - std::max(a.yl, b.yl)
                        : std::min(a.xh, b.xh) - std::max(a.xl, b.xl);
    return std::max<Coord>(o, 0);
  }
  void apply(Rect& r, Coord newLo, Coord newHi) const {
    if (horizontal) {
      r.xl = newLo;
      r.xh = newHi;
    } else {
      r.yl = newLo;
      r.yh = newHi;
    }
  }
};

// Marginal overlay of moving an edge inward: total frozen-axis overlap of
// opposing shapes that the edge currently cuts through. Raising the LOW
// edge reduces overlap with shapes satisfying lo(s) <= edge < hi(s);
// lowering the HIGH edge with lo(s) < edge <= hi(s).
//
// With `index` non-null the candidate set comes from a GridIndex query for
// the one-DBU strip the edge sweeps; the exact cut test still runs per
// candidate, so the total is the same integer sum in a different order.
Coord overlayMarginal(const Rect& fill, Coord edge, bool isLowEdge,
                      const std::vector<Rect>& opposing,
                      const geom::GridIndex* index, const AxisView& ax) {
  Coord total = 0;
  const auto accumulate = [&](const Rect& s) {
    if (ax.frozenOverlap(fill, s) <= 0) return;
    const bool cuts = isLowEdge ? (ax.lo(s) <= edge && edge < ax.hi(s))
                                : (ax.lo(s) < edge && edge <= ax.hi(s));
    if (cuts) total += ax.frozenOverlap(fill, s);
  };
  if (index == nullptr) {
    for (const Rect& s : opposing) accumulate(s);
    return total;
  }
  // Shapes cutting the edge are exactly those intersecting the one-DBU
  // strip at the edge (low: [edge, edge+1); high: [edge-1, edge)) with the
  // fill's frozen extent; anything else contributes zero.
  Rect query = fill;
  if (ax.horizontal) {
    query.xl = isLowEdge ? edge : edge - 1;
    query.xh = query.xl + 1;
  } else {
    query.yl = isLowEdge ? edge : edge - 1;
    query.yh = query.yl + 1;
  }
  index->visit(query, [&](std::uint32_t id) {
    accumulate(opposing[static_cast<std::size_t>(id)]);
  });
  return total;
}

void buildIndex(geom::GridIndex& index, const Rect& window, Coord cellSize,
                const std::vector<Rect>& shapes) {
  index.reset(window, cellSize);
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    if (shapes[i].empty()) continue;  // contributes zero either way
    index.insert(static_cast<std::uint32_t>(i), shapes[i]);
  }
  prof::count(prof::Counter::kIndexBuilds);
}

// All unordered fill pairs (i < j) with frozen-axis overlap whose gap in
// the variable axis is below minSpacing. Membership is evaluated with the
// symmetric max-gap form max(lo_j - hi_i, lo_i - hi_j): for non-empty
// intervals it admits a pair iff the lo-ordered oriented gap does (when
// the oriented gap is not the max, the other gap is negative, hence below
// any minSpacing >= 0), so the repair-need pass and the constraint pass
// can share one list. The indexed path queries each fill's variable-axis
// expansion by minSpacing — intersection with the expansion is exactly
// "both oriented gaps < minSpacing" — then sorts, matching the brute
// (i, j)-ascending order.
void collectClosePairs(const std::vector<Rect>& fills, const AxisView& ax,
                       Coord minSpacing, const geom::GridIndex* index,
                       std::vector<std::pair<std::size_t, std::size_t>>& out) {
  out.clear();
  const auto maxGap = [&](std::size_t i, std::size_t j) {
    return std::max(ax.lo(fills[j]) - ax.hi(fills[i]),
                    ax.lo(fills[i]) - ax.hi(fills[j]));
  };
  if (index == nullptr) {
    for (std::size_t i = 0; i < fills.size(); ++i) {
      for (std::size_t j = i + 1; j < fills.size(); ++j) {
        if (ax.frozenOverlap(fills[i], fills[j]) <= 0) continue;
        if (maxGap(i, j) < minSpacing) out.push_back({i, j});
      }
    }
    return;
  }
  for (std::size_t i = 0; i < fills.size(); ++i) {
    Rect query = fills[i];
    if (ax.horizontal) {
      query.xl -= minSpacing;
      query.xh += minSpacing;
    } else {
      query.yl -= minSpacing;
      query.yh += minSpacing;
    }
    index->visit(query, [&](std::uint32_t id) {
      const auto j = static_cast<std::size_t>(id);
      if (j <= i) return;  // each pair once, from its smaller index
      if (ax.frozenOverlap(fills[i], fills[j]) <= 0) return;
      if (maxGap(i, j) < minSpacing) out.push_back({i, j});
    });
  }
  std::sort(out.begin(), out.end());
}

}  // namespace

void FillSizer::size(WindowProblem& problem, Stats* stats) const {
  Scratch scratch;
  size(problem, scratch, stats);
}

void FillSizer::size(WindowProblem& problem, Scratch& scratch,
                     Stats* stats) const {
  const int numLayers = static_cast<int>(problem.fills.size());
  for (int round = 0; round < options_.iterations; ++round) {
    for (const bool horizontal : {true, false}) {
      for (int l = 0; l < numLayers; ++l) {
        sizeLayerDirection(problem, l, horizontal, scratch, stats);
      }
    }
  }
  // Final exact trim: the LP iterations stop within one step-rounding of
  // the target; a deterministic width trim removes the residual surplus so
  // the window lands on its target density to DBU precision.
  for (int l = 0; l < numLayers; ++l) {
    trimToTarget(problem, l, scratch);
  }
}

void FillSizer::trimToTarget(WindowProblem& problem, int layer,
                             Scratch& scratch) const {
  auto& fills = problem.fills[static_cast<std::size_t>(layer)];
  if (fills.empty()) return;
  const auto windowArea = static_cast<double>(problem.window.area());
  const double target =
      (problem.targetDensity[static_cast<std::size_t>(layer)] -
       problem.wireDensity[static_cast<std::size_t>(layer)]) *
      windowArea;
  Area fillArea = 0;
  for (const Rect& f : fills) fillArea += f.area();
  Area surplus = fillArea - static_cast<Area>(target);
  if (surplus <= 0) return;

  // Prefer trimming fills whose right edge currently cuts opposing shapes
  // (free overlay win); opposing geometry is the neighboring layers'.
  const int numLayers = static_cast<int>(problem.fills.size());
  auto& opposing = scratch.opposingWires;  // combined wires + fills here
  opposing.clear();
  for (int nb : {layer - 1, layer + 1}) {
    if (nb < 0 || nb >= numLayers) continue;
    const auto& w = problem.wires[static_cast<std::size_t>(nb)];
    const auto& f = problem.fills[static_cast<std::size_t>(nb)];
    opposing.insert(opposing.end(), w.begin(), w.end());
    opposing.insert(opposing.end(), f.begin(), f.end());
  }
  const geom::GridIndex* index = nullptr;
  if (options_.spatialIndex && opposing.size() >= kIndexMinShapes) {
    buildIndex(scratch.wireIndex, problem.window,
               geom::windowCellSize(problem.window, rules_.maxFillSize),
               opposing);
    index = &scratch.wireIndex;
    prof::count(prof::Counter::kIndexQueries, fills.size());
  }
  const AxisView ax{true};
  std::vector<std::pair<Coord, std::size_t>> order;  // (-marginal, index)
  order.reserve(fills.size());
  {
    prof::ScopedTimer overlayTimer(prof::Stage::kSizerOverlay);
    for (std::size_t i = 0; i < fills.size(); ++i) {
      order.push_back(
          {-overlayMarginal(fills[i], fills[i].xh, false, opposing, index, ax),
           i});
    }
  }
  std::sort(order.begin(), order.end());

  for (const auto& [negMarginal, i] : order) {
    if (surplus <= 0) break;
    Rect& f = fills[i];
    const Coord h = f.height();
    const Coord minLen = std::max(
        rules_.minWidth, static_cast<Coord>((rules_.minArea + h - 1) / h));
    const Coord canShrink = f.width() - minLen;
    const Coord want = static_cast<Coord>(surplus / h);
    const Coord shrink = std::min(canShrink, want);
    if (shrink <= 0) continue;
    f.xh -= shrink;
    surplus -= static_cast<Area>(shrink) * h;
  }
}

void FillSizer::sizeLayerDirection(WindowProblem& problem, int layer,
                                   bool horizontal, Scratch& scratch,
                                   Stats* stats) const {
  auto& fills = problem.fills[static_cast<std::size_t>(layer)];
  if (fills.empty()) return;
  const AxisView ax{horizontal};
  const int numLayers = static_cast<int>(problem.fills.size());

  // Opposing geometry (frozen for this pass): wires and fills of l +- 1,
  // kept separate so overlay with signal wires can be weighted harder.
  auto& opposingWires = scratch.opposingWires;
  auto& opposingFills = scratch.opposingFills;
  opposingWires.clear();
  opposingFills.clear();
  for (int nb : {layer - 1, layer + 1}) {
    if (nb < 0 || nb >= numLayers) continue;
    const auto& w = problem.wires[static_cast<std::size_t>(nb)];
    const auto& f = problem.fills[static_cast<std::size_t>(nb)];
    opposingWires.insert(opposingWires.end(), w.begin(), w.end());
    opposingFills.insert(opposingFills.end(), f.begin(), f.end());
  }

  // Per-pass spatial indexes over the (frozen) opposing sets and this
  // layer's own fills. Every indexed total re-checks the exact predicate
  // per candidate shape, so results match the brute scans bit for bit.
  const geom::GridIndex* wireIndex = nullptr;
  const geom::GridIndex* fillIndex = nullptr;
  const geom::GridIndex* selfIndex = nullptr;
  if (options_.spatialIndex &&
      opposingWires.size() + opposingFills.size() + fills.size() >=
          kIndexMinShapes) {
    const Coord cell =
        geom::windowCellSize(problem.window, rules_.maxFillSize);
    buildIndex(scratch.wireIndex, problem.window, cell, opposingWires);
    buildIndex(scratch.fillIndex, problem.window, cell, opposingFills);
    buildIndex(scratch.selfIndex, problem.window, cell, fills);
    wireIndex = &scratch.wireIndex;
    fillIndex = &scratch.fillIndex;
    selfIndex = &scratch.selfIndex;
    // 4 marginal queries per fill (2 edges x wires/fills) + 1 pair query.
    prof::count(prof::Counter::kIndexQueries, 5 * fills.size());
  }

  // Density pressure: above target rewards shrinking, below target
  // penalizes it (Eqn. 10's absolute value, linearized at the current
  // point since fills only shrink).
  Area fillArea = 0;
  for (const Rect& f : fills) fillArea += f.area();
  const auto windowArea = static_cast<double>(problem.window.area());
  const double target =
      problem.targetDensity[static_cast<std::size_t>(layer)] * windowArea -
      problem.wireDensity[static_cast<std::size_t>(layer)] * windowArea;
  const double surplus = static_cast<double>(fillArea) - target;
  const int densitySign = surplus > 0 ? 1 : -1;

  // Per-fill geometry and overlay marginals, computed up front so the
  // step budget below can weight them.
  const std::size_t n = fills.size();
  auto& frozen = scratch.frozen;
  auto& minLen = scratch.minLen;
  auto& ovLo = scratch.ovLo;
  auto& ovHi = scratch.ovHi;
  frozen.resize(n);
  minLen.resize(n);
  ovLo.resize(n);
  ovHi.resize(n);
  {
    prof::ScopedTimer overlayTimer(prof::Stage::kSizerOverlay);
    for (std::size_t i = 0; i < n; ++i) {
      const Rect& f = fills[i];
      frozen[i] = ax.frozenLen(f);
      // Legal minimum extent in this axis: width rule and area rule with
      // the other axis frozen (Eqn. 12).
      minLen[i] = std::max(
          rules_.minWidth,
          static_cast<Coord>((rules_.minArea + frozen[i] - 1) / frozen[i]));
      // Wire overlay weighted by etaWireFactor relative to fill overlay.
      const double wf = options_.etaWireFactor;
      ovLo[i] = static_cast<Coord>(std::llround(
          wf * static_cast<double>(
                   overlayMarginal(f, ax.lo(f), /*isLowEdge=*/true,
                                   opposingWires, wireIndex, ax)) +
          static_cast<double>(overlayMarginal(f, ax.lo(f), /*isLowEdge=*/true,
                                              opposingFills, fillIndex, ax))));
      ovHi[i] = static_cast<Coord>(std::llround(
          wf * static_cast<double>(
                   overlayMarginal(f, ax.hi(f), /*isLowEdge=*/false,
                                   opposingWires, wireIndex, ax)) +
          static_cast<double>(overlayMarginal(f, ax.hi(f), /*isLowEdge=*/false,
                                              opposingFills, fillIndex, ax))));
    }
  }

  // Per-iteration shrink steps (paper: "variables are bounded to a certain
  // range ... updated according to the results of each iteration"). When
  // above target, the total step budget removes roughly the surplus and no
  // more (the |.| of Eqn. 10 is linearized at the current point, so
  // overshooting past the target would invalidate the sign); the budget is
  // weighted toward fills whose edges currently cut opposing shapes, which
  // is what converts the shared shrink into overlay reduction. Below
  // target, a small uniform step still lets overlay-dominated fills trade
  // density away. Rounding down is deliberate — the residual surplus is
  // removed exactly by trimToTarget afterwards.
  auto& step = scratch.step;
  step.assign(n, rules_.minSpacing);
  if (surplus > 0) {
    double weightedFrozen = 0.0;
    auto& weight = scratch.weight;
    weight.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double ovFraction =
          static_cast<double>(ovLo[i] + ovHi[i]) /
          std::max(2.0 * static_cast<double>(frozen[i]), 1.0);
      weight[i] = 1.0 + options_.eta * ovFraction;
      weightedFrozen += weight[i] * static_cast<double>(frozen[i]);
    }
    const double base =
        weightedFrozen > 0 ? surplus / (2.0 * weightedFrozen) : 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      step[i] = static_cast<Coord>(std::floor(base * weight[i]));
    }
  }

  // One shared close-pair list drives both the repair budget and the
  // spacing constraints (their membership conditions are equivalent; see
  // collectClosePairs).
  auto& closePairs = scratch.closePairs;
  collectClosePairs(fills, ax, rules_.minSpacing, selfIndex, closePairs);

  // Fills involved in spacing violations get extra shrink freedom, enough
  // for one fill alone to clear the worst of its violations: repairing DRC
  // outranks the step budget.
  auto& repairNeed = scratch.repairNeed;
  repairNeed.assign(n, 0);
  for (const auto& [i, j] : closePairs) {
    const Coord gap = std::max(ax.lo(fills[j]) - ax.hi(fills[i]),
                               ax.lo(fills[i]) - ax.hi(fills[j]));
    const Coord need = rules_.minSpacing - gap;
    repairNeed[i] = std::max(repairNeed[i], need);
    repairNeed[j] = std::max(repairNeed[j], need);
  }

  // Build the differential LP: variables 2k (lo edge), 2k+1 (hi edge).
  mcf::DifferentialLp lp;
  for (std::size_t fi = 0; fi < n; ++fi) {
    const Rect& f = fills[fi];
    const Coord lo = ax.lo(f);
    const Coord hi = ax.hi(f);
    const Coord fullFreedom = hi - lo - minLen[fi];
    const Coord maxShrinkEach = std::max<Coord>(
        0, std::min(std::max(step[fi], repairNeed[fi]), fullFreedom));

    const auto etaScaled = [this](Coord v) {
      return static_cast<mcf::Value>(
          std::llround(options_.eta * static_cast<double>(v)));
    };
    // d(objective)/d(hiEdge) = densitySign * frozen + eta * ovHi;
    // d(objective)/d(loEdge) is the mirror image.
    const mcf::Value costHi = densitySign * frozen[fi] + etaScaled(ovHi[fi]);
    const mcf::Value costLo = -densitySign * frozen[fi] - etaScaled(ovLo[fi]);
    const int vLo = lp.addVariable(costLo, lo, lo + maxShrinkEach);
    const int vHi = lp.addVariable(costHi, hi - maxShrinkEach, hi);
    lp.addConstraint(vHi, vLo, minLen[fi]);  // hi - lo >= minLen
  }

  // Spacing repair constraints (Eqn. 13): pairs violating the spacing rule
  // in this axis with frozen-axis overlap. Candidate generation normally
  // leaves none; this path exists for DRC-dirty inputs.
  std::vector<std::pair<std::size_t, std::size_t>> violating;
  for (const auto& [i, j] : closePairs) {
    const std::size_t left = ax.lo(fills[i]) <= ax.lo(fills[j]) ? i : j;
    const std::size_t right = left == i ? j : i;
    // lo(right) - hi(left) >= minSpacing
    lp.addConstraint(static_cast<int>(2 * right),
                     static_cast<int>(2 * left + 1), rules_.minSpacing);
    violating.push_back({left, right});
    if (stats != nullptr) ++stats->spacingConstraints;
  }

  auto solveRelaxation = [this, &scratch, layer,
                          horizontal](const mcf::DifferentialLp& dlp) {
    if (!options_.useLpSolver) {
      // Per-(layer, direction) context: within a window, round r >= 2
      // revisits the same topology and reuses the round r-1 network.
      const std::size_t key =
          static_cast<std::size_t>(layer) * 2 + (horizontal ? 1 : 0);
      const mcf::DualMcfContext::Options wanted{
          options_.backend, options_.mcfWarmStart, options_.mcfEarlyExit,
          /*earlyExitTolerance=*/0, options_.mcfFullRefresh};
      if (!scratch.mcfContexts.empty() &&
          (scratch.mcfContextOptions.backend != wanted.backend ||
           scratch.mcfContextOptions.warmStart != wanted.warmStart ||
           scratch.mcfContextOptions.earlyExit != wanted.earlyExit ||
           scratch.mcfContextOptions.fullPivotRefresh !=
               wanted.fullPivotRefresh)) {
        scratch.mcfContexts.clear();
      }
      if (scratch.mcfContexts.size() <= key) {
        scratch.mcfContexts.resize(key + 1, mcf::DualMcfContext(wanted));
        scratch.mcfContextOptions = wanted;
      }
      return scratch.mcfContexts[key].solve(dlp);
    }
    // Ablation backend: identical model through the dense simplex.
    lp::LpModel model;
    for (int v = 0; v < dlp.numVariables(); ++v) {
      model.addVariable(static_cast<double>(dlp.cost(v)),
                        static_cast<double>(dlp.lower(v)),
                        static_cast<double>(dlp.upper(v)));
    }
    for (const mcf::DiffConstraint& c : dlp.constraints()) {
      model.addConstraint({{c.i, 1.0}, {c.j, -1.0}},
                          lp::Sense::kGreaterEqual,
                          static_cast<double>(c.bound));
    }
    mcf::DiffLpResult out;
    const lp::LpResult r = lp::SimplexSolver().solve(model);
    if (r.status == lp::LpStatus::kOptimal) {
      out.feasible = true;
      out.x.resize(r.x.size());
      for (std::size_t v = 0; v < r.x.size(); ++v) {
        // Differential systems are totally unimodular, so the LP optimum
        // is integral up to floating-point noise.
        out.x[v] = static_cast<mcf::Value>(std::llround(r.x[v]));
      }
      out.objective = dlp.objective(out.x);
    }
    return out;
  };

  mcf::DiffLpResult result = solveRelaxation(lp);
  if (stats != nullptr) {
    ++stats->solves;
    if (result.usedWarmStart) ++stats->warmStarts;
    if (result.usedEarlyExit) ++stats->earlyExits;
  }

  if (!result.feasible && !violating.empty()) {
    // Spacing cannot be repaired within the per-iteration step: drop the
    // smaller fill of each violating pair and re-run.
    if (stats != nullptr) ++stats->infeasibleFallbacks;
    std::vector<char> dropped(fills.size(), 0);
    for (const auto& [a, b] : violating) {
      const std::size_t victim = fills[a].area() <= fills[b].area() ? a : b;
      dropped[victim] = 1;
    }
    std::vector<Rect> kept;
    for (std::size_t i = 0; i < fills.size(); ++i) {
      if (dropped[i] == 0) {
        kept.push_back(fills[i]);
      } else if (stats != nullptr) {
        ++stats->droppedFills;
      }
    }
    fills = std::move(kept);
    sizeLayerDirection(problem, layer, horizontal, scratch, stats);
    return;
  }
  if (!result.feasible) return;  // keep current sizes

  for (std::size_t i = 0; i < fills.size(); ++i) {
    const Coord newLo = result.x[2 * i];
    const Coord newHi = result.x[2 * i + 1];
    assert(newHi > newLo);
    ax.apply(fills[i], newLo, newHi);
  }
}

}  // namespace ofl::fill
