#include "fill/target_planner.hpp"

#include <algorithm>
#include <cassert>

#include "density/density_map.hpp"
#include "density/metrics.hpp"

#include "common/logging.hpp"

namespace ofl::fill {
namespace {

std::vector<double> clampedDensities(const density::DensityBounds& bounds,
                                     double td) {
  std::vector<double> d(bounds.lower.size());
  for (std::size_t w = 0; w < d.size(); ++w) {
    d[w] = std::clamp(td, bounds.lower[w], bounds.upper[w]);
  }
  return d;
}

double scoreTerm(double weight, double value, double beta) {
  return weight * std::max(0.0, 1.0 - value / beta);
}

}  // namespace

double TargetDensityPlanner::scoreLayer(const density::DensityBounds& bounds,
                                        int cols, int rows, double td) const {
  density::DensityMap map(cols, rows, clampedDensities(bounds, td));
  const density::DensityMetrics m = density::computeMetrics(map);
  return scoreTerm(weights_.wSigma, m.sigma, weights_.betaSigma) +
         scoreTerm(weights_.wLine, m.lineHotspot, weights_.betaLine) +
         scoreTerm(weights_.wOutlier, m.sigma * m.outlierHotspot,
                   weights_.betaOutlier);
}

TargetPlan TargetDensityPlanner::plan(
    const std::vector<density::DensityBounds>& boundsPerLayer, int cols,
    int rows) const {
  TargetPlan plan;
  for (const density::DensityBounds& bounds : boundsPerLayer) {
    assert(bounds.lower.size() == static_cast<std::size_t>(cols) * rows);
    double maxLower = 0.0;
    double minLower = 1.0;
    for (std::size_t w = 0; w < bounds.lower.size(); ++w) {
      maxLower = std::max(maxLower, bounds.lower[w]);
      minLower = std::min(minLower, bounds.lower[w]);
    }
    // Case I optimum is td = max lower bound (Eqn. 6); when some windows
    // cannot reach it (Eqn. 7), a lower td can score better, so sweep the
    // whole [minLower, maxLower] range and keep the best.
    double bestTd = maxLower;
    double bestScore = scoreLayer(bounds, cols, rows, maxLower);
    for (int s = 0; s < sweepSteps_; ++s) {
      const double td =
          minLower + (maxLower - minLower) * s / std::max(1, sweepSteps_ - 1);
      const double score = scoreLayer(bounds, cols, rows, td);
      if (score > bestScore + 1e-12) {
        bestScore = score;
        bestTd = td;
      }
    }
    plan.layerTarget.push_back(bestTd);
    plan.windowTarget.push_back(clampedDensities(bounds, bestTd));
    int capped = 0;
    for (std::size_t w = 0; w < bounds.upper.size(); ++w) {
      if (bounds.upper[w] < maxLower) ++capped;
    }
    logDebug("planner: layer %zu td=%.4f (maxLower %.4f scores %.6f, "
             "chosen scores %.6f, %d/%zu windows capped below maxLower)",
             plan.layerTarget.size() - 1, bestTd, maxLower,
             scoreLayer(bounds, cols, rows, maxLower), bestScore, capped,
             bounds.upper.size());
  }
  return plan;
}

TargetPlan TargetDensityPlanner::planPinned(
    const TargetPlan& goal,
    const std::vector<density::DensityBounds>& boundsPerLayer) const {
  TargetPlan plan;
  plan.layerTarget = goal.layerTarget;
  plan.windowTarget.resize(boundsPerLayer.size());
  for (std::size_t l = 0; l < boundsPerLayer.size(); ++l) {
    const density::DensityBounds& bounds = boundsPerLayer[l];
    const auto& want = goal.windowTarget[l];
    assert(want.size() == bounds.lower.size());
    auto& out = plan.windowTarget[l];
    out.resize(want.size());
    for (std::size_t w = 0; w < want.size(); ++w) {
      out[w] = std::clamp(want[w], bounds.lower[w], bounds.upper[w]);
    }
  }
  return plan;
}

}  // namespace ofl::fill
