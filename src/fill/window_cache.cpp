#include "fill/window_cache.hpp"

#include <utility>

namespace ofl::fill {

bool WindowCache::lookup(std::uint64_t key, Entry& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  out = it->second;
  return true;
}

void WindowCache::insert(std::uint64_t key, Entry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[key] = std::move(entry);
}

void WindowCache::storePlan(StoredPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = std::move(plan);
  hasPlan_ = true;
}

bool WindowCache::getPlan(int cols, int rows, int layers,
                          StoredPlan& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!hasPlan_ || plan_.cols != cols || plan_.rows != rows ||
      plan_.layers != layers) {
    return false;
  }
  out = plan_;
  return true;
}

std::size_t WindowCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

long long WindowCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

long long WindowCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

void WindowCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hasPlan_ = false;
  hits_ = 0;
  misses_ = 0;
}

}  // namespace ofl::fill
