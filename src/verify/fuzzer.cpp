#include "verify/fuzzer.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <filesystem>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "fill/fill_engine.hpp"
#include "verify/layout_gen.hpp"

namespace ofl::verify {
namespace {

/// Shrink-phase helper: rebuilds the case with a different wire set.
FuzzCase withWires(const FuzzCase& base, const geom::Rect& die,
                   const std::vector<std::vector<geom::Rect>>& wiresPerLayer) {
  FuzzCase out = base;
  out.layout = layout::Layout(die, static_cast<int>(wiresPerLayer.size()));
  for (std::size_t l = 0; l < wiresPerLayer.size(); ++l) {
    for (const geom::Rect& w : wiresPerLayer[l]) {
      const geom::Rect clipped = w.intersection(die);
      if (!clipped.empty())
        out.layout.layer(static_cast<int>(l)).wires.push_back(clipped);
    }
  }
  return out;
}

std::vector<std::vector<geom::Rect>> wiresOf(const layout::Layout& chip) {
  std::vector<std::vector<geom::Rect>> wires;
  wires.reserve(static_cast<std::size_t>(chip.numLayers()));
  for (int l = 0; l < chip.numLayers(); ++l)
    wires.push_back(chip.layer(l).wires);
  return wires;
}

}  // namespace

FuzzCase LayoutFuzzer::generate(std::uint64_t seed) {
  Rng rng(seed);
  FuzzCase fuzzCase;
  fuzzCase.seed = seed;

  testing::LayoutGen::LayoutParams layoutParams;
  fuzzCase.layout = testing::LayoutGen::randomLayout(rng, layoutParams);

  fill::FillEngineOptions& e = fuzzCase.engine;
  e.windowSize = rng.uniformInt(500, 1500);
  e.rules.minWidth = rng.uniformInt(6, 16);
  e.rules.minSpacing = rng.uniformInt(6, 16);
  e.rules.minArea = e.rules.minWidth * e.rules.minWidth;
  e.rules.maxFillSize = rng.uniformInt(80, 300);
  // maxDensity stays 1.0: the planner's upper bound is then structural
  // (fills can never exceed it), so density-bounds is a true invariant.
  e.rules.maxDensity = 1.0;
  e.candidate.lambda = rng.uniformReal(1.0, 1.3);
  e.candidate.gamma = rng.uniformReal(0.5, 1.5);
  e.candidate.uniformCells = rng.bernoulli(0.15);
  e.sizer.etaWireFactor = rng.uniformReal(1.0, 2.0);
  e.sizer.iterations = static_cast<int>(rng.uniformInt(1, 2));
  if (rng.bernoulli(0.2))
    e.sizer.backend = mcf::McfBackend::kSuccessiveShortestPath;
  // The invariant checker's determinism pass does its own thread sweep.
  e.numThreads = 1;
  return fuzzCase;
}

FuzzOutcome LayoutFuzzer::check(const FuzzCase& fuzzCase,
                                bool checkDeterminism) {
  // Hundreds of tiny engine runs: per-run info logging is pure noise.
  const ScopedLogLevel quiet(LogLevel::kWarn);
  layout::Layout chip = fuzzCase.layout;
  try {
    fill::FillEngine(fuzzCase.engine).run(chip);
  } catch (const std::exception& e) {
    return {false, "engine-run", e.what()};
  }

  InvariantChecker::Options opts;
  opts.engine = fuzzCase.engine;
  opts.checkDeterminism = checkDeterminism;
  VerifyReport report;
  try {
    report = InvariantChecker(opts).check(chip);
  } catch (const std::exception& e) {
    return {false, "invariant-check", e.what()};
  }
  for (const CheckResult& c : report.checks) {
    if (!c.passed) return {false, c.name, c.detail};
  }
  return {true, "", ""};
}

FuzzCase LayoutFuzzer::minimize(
    const FuzzCase& fuzzCase,
    const std::function<bool(const FuzzCase&)>& failing, int maxEvaluations) {
  int evaluations = 0;
  const auto tryCase = [&](const FuzzCase& candidate) {
    if (evaluations >= maxEvaluations) return false;
    ++evaluations;
    return failing(candidate);
  };

  FuzzCase current = fuzzCase;
  geom::Rect die = current.layout.die();
  std::vector<std::vector<geom::Rect>> wires = wiresOf(current.layout);

  // Phase 1: drop trailing layers.
  while (wires.size() > 1) {
    auto fewer = wires;
    fewer.pop_back();
    const FuzzCase candidate = withWires(current, die, fewer);
    if (!tryCase(candidate)) break;
    wires = std::move(fewer);
    current = candidate;
  }

  // Phase 2: ddmin over each layer's wire list — remove chunks of
  // geometrically shrinking size while the failure persists.
  for (std::size_t l = 0; l < wires.size(); ++l) {
    std::size_t chunk = std::max<std::size_t>(wires[l].size() / 2, 1);
    while (chunk >= 1 && !wires[l].empty() && evaluations < maxEvaluations) {
      bool removedAny = false;
      for (std::size_t start = 0; start < wires[l].size();) {
        auto reduced = wires;
        const std::size_t end = std::min(start + chunk, reduced[l].size());
        reduced[l].erase(reduced[l].begin() + static_cast<std::ptrdiff_t>(start),
                         reduced[l].begin() + static_cast<std::ptrdiff_t>(end));
        const FuzzCase candidate = withWires(current, die, reduced);
        if (tryCase(candidate)) {
          wires = std::move(reduced);
          current = candidate;
          removedAny = true;
          // Do not advance: the next chunk shifted into `start`.
        } else {
          start += chunk;
        }
      }
      if (chunk == 1 && !removedAny) break;
      if (!removedAny) chunk /= 2;
    }
  }

  // Phase 3: crop the die toward the wires' bounding box (keeping a margin
  // so fill regions around the wires survive).
  geom::Rect bbox;
  bool haveBbox = false;
  for (const auto& layer : wires) {
    for (const geom::Rect& w : layer) {
      bbox = haveBbox ? bbox.bboxUnion(w) : w;
      haveBbox = true;
    }
  }
  if (haveBbox) {
    const geom::Coord margins[] = {
        current.engine.windowSize,
        current.engine.rules.maxFillSize + 2 * current.engine.rules.minSpacing};
    for (const geom::Coord margin : margins) {
      const geom::Rect cropped = bbox.expanded(margin).intersection(die);
      if (cropped.empty() || cropped == die) continue;
      const FuzzCase candidate = withWires(current, cropped, wires);
      if (tryCase(candidate)) {
        die = cropped;
        current = candidate;
      }
    }
  }
  return current;
}

FuzzStats LayoutFuzzer::run() const {
  FuzzStats stats;
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  if (!options_.corpusDir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.corpusDir, ec);
  }

  for (int i = 0; i < options_.seeds; ++i) {
    if (options_.maxSeconds > 0.0 && elapsed() >= options_.maxSeconds) break;
    const std::uint64_t seed = options_.firstSeed + static_cast<std::uint64_t>(i);
    const FuzzCase fuzzCase = generate(seed);
    ++stats.executed;
    const FuzzOutcome outcome = check(fuzzCase, options_.checkDeterminism);
    if (outcome.passed) continue;

    FuzzFailure failure;
    failure.seed = seed;
    failure.check = outcome.check;
    failure.detail = outcome.detail;
    failure.originalWireCount = fuzzCase.layout.wireCount();

    FuzzCase minimal = fuzzCase;
    if (options_.minimize) {
      const std::string targetCheck = outcome.check;
      minimal = minimize(
          fuzzCase,
          [this, &targetCheck](const FuzzCase& candidate) {
            const FuzzOutcome o = check(candidate, options_.checkDeterminism);
            return !o.passed && o.check == targetCheck;
          },
          options_.maxShrinkEvaluations);
    }
    failure.minimizedWireCount = minimal.layout.wireCount();

    if (!options_.corpusDir.empty()) {
      const std::string path = options_.corpusDir + "/seed-" +
                               std::to_string(seed) + ".repro";
      if (writeReproFile(path, minimal)) failure.reproPath = path;
    }
    stats.failures.push_back(std::move(failure));
  }
  stats.seconds = elapsed();
  return stats;
}

}  // namespace ofl::verify
