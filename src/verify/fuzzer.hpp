// Seeded random-layout fuzzer with a shrinking minimizer.
//
// Each seed deterministically generates a wire layout plus randomized
// engine options (window size, DRC rules, candidate/sizer knobs), runs the
// full fill -> evaluate pipeline, and checks every invariant from
// invariants.hpp. On failure the case is shrunk with delta debugging —
// drop layers, halve wire chunks (ddmin), crop the die — while the failure
// reproduces, and the minimal case is written as a .repro file (repro.hpp)
// for tests/corpus/.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "verify/invariants.hpp"
#include "verify/repro.hpp"

namespace ofl::verify {

struct FuzzFailure {
  std::uint64_t seed = 0;
  std::string check;   // first failing check name ("engine-run" on a throw)
  std::string detail;
  std::string reproPath;  // empty when writing the repro failed
  std::size_t originalWireCount = 0;
  std::size_t minimizedWireCount = 0;
};

struct FuzzOptions {
  std::uint64_t firstSeed = 1;
  int seeds = 100;
  /// Wall-clock budget; 0 = unlimited. Checked between seeds, so one case
  /// can overshoot slightly.
  double maxSeconds = 0.0;
  /// Directory minimized repros are written into (created if missing);
  /// empty = don't write repros.
  std::string corpusDir;
  bool minimize = true;
  /// Skip the 3-run determinism invariant for faster sweeps.
  bool checkDeterminism = true;
  /// Shrink budget: max predicate evaluations per failure.
  int maxShrinkEvaluations = 160;
};

struct FuzzStats {
  int executed = 0;
  std::vector<FuzzFailure> failures;
  double seconds = 0.0;
};

struct FuzzOutcome {
  bool passed = true;
  std::string check;
  std::string detail;
};

class LayoutFuzzer {
 public:
  explicit LayoutFuzzer(FuzzOptions options) : options_(std::move(options)) {}

  FuzzStats run() const;

  /// Deterministic case generation: layout + engine options from one seed.
  static FuzzCase generate(std::uint64_t seed);

  /// Runs fill + all invariants on a copy of `fuzzCase`; engine exceptions
  /// surface as a failed "engine-run" outcome instead of propagating.
  static FuzzOutcome check(const FuzzCase& fuzzCase, bool checkDeterminism);

  /// Delta-debugging shrink: returns the smallest found case for which
  /// `failing` stays true (it must hold for `fuzzCase` itself). Exposed
  /// with an arbitrary predicate so tests can shrink against synthetic
  /// conditions rather than real engine bugs.
  static FuzzCase minimize(const FuzzCase& fuzzCase,
                           const std::function<bool(const FuzzCase&)>& failing,
                           int maxEvaluations);

 private:
  FuzzOptions options_;
};

}  // namespace ofl::verify
