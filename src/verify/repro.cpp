#include "verify/repro.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

namespace ofl::verify {
namespace {

constexpr const char* kHeader = "openfill-repro v1";

std::string backendName(mcf::McfBackend backend) {
  switch (backend) {
    case mcf::McfBackend::kNetworkSimplex:
      return "network-simplex";
    case mcf::McfBackend::kSuccessiveShortestPath:
      return "ssp";
    case mcf::McfBackend::kCycleCanceling:
      return "cycle-canceling";
  }
  return "network-simplex";
}

std::optional<mcf::McfBackend> backendFromName(const std::string& name) {
  if (name == "network-simplex") return mcf::McfBackend::kNetworkSimplex;
  if (name == "ssp") return mcf::McfBackend::kSuccessiveShortestPath;
  if (name == "cycle-canceling") return mcf::McfBackend::kCycleCanceling;
  return std::nullopt;
}

}  // namespace

std::string writeRepro(const FuzzCase& fuzzCase) {
  std::ostringstream out;
  out << std::setprecision(17);
  const geom::Rect& die = fuzzCase.layout.die();
  const fill::FillEngineOptions& e = fuzzCase.engine;
  out << kHeader << "\n";
  out << "seed " << fuzzCase.seed << "\n";
  out << "die " << die.xl << " " << die.yl << " " << die.xh << " " << die.yh
      << "\n";
  out << "layers " << fuzzCase.layout.numLayers() << "\n";
  out << "window " << e.windowSize << "\n";
  out << "rules " << e.rules.minWidth << " " << e.rules.minSpacing << " "
      << e.rules.minArea << " " << e.rules.maxFillSize << " "
      << e.rules.maxDensity << "\n";
  out << "planner " << e.plannerWeights.wSigma << " " << e.plannerWeights.wLine
      << " " << e.plannerWeights.wOutlier << " " << e.plannerWeights.betaSigma
      << " " << e.plannerWeights.betaLine << " "
      << e.plannerWeights.betaOutlier << "\n";
  out << "candidate " << e.candidate.lambda << " " << e.candidate.gamma << " "
      << (e.candidate.uniformCells ? 1 : 0) << "\n";
  out << "sizer " << e.sizer.eta << " " << e.sizer.etaWireFactor << " "
      << e.sizer.iterations << " " << backendName(e.sizer.backend) << " "
      << (e.sizer.useLpSolver ? 1 : 0) << "\n";
  for (int l = 0; l < fuzzCase.layout.numLayers(); ++l) {
    for (const geom::Rect& w : fuzzCase.layout.layer(l).wires) {
      out << "wire " << l << " " << w.xl << " " << w.yl << " " << w.xh << " "
          << w.yh << "\n";
    }
  }
  return out.str();
}

bool writeReproFile(const std::string& path, const FuzzCase& fuzzCase) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << writeRepro(fuzzCase);
  return static_cast<bool>(out);
}

std::optional<FuzzCase> readRepro(const std::string& text) {
  std::istringstream in(text);
  // The header must be the first non-comment, non-blank line; corpus files
  // conventionally start with a `#` block describing the bug.
  std::string firstLine;
  bool sawHeader = false;
  while (std::getline(in, firstLine)) {
    if (!firstLine.empty() && firstLine.back() == '\r') firstLine.pop_back();
    const auto start = firstLine.find_first_not_of(" \t");
    if (start == std::string::npos || firstLine[start] == '#') continue;
    sawHeader = firstLine == kHeader;
    break;
  }
  if (!sawHeader) return std::nullopt;

  FuzzCase fuzzCase;
  geom::Rect die{0, 0, 0, 0};
  int layers = 0;
  struct Wire {
    int layer;
    geom::Rect rect;
  };
  std::vector<Wire> wires;

  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key) || key.empty() || key[0] == '#') continue;
    fill::FillEngineOptions& e = fuzzCase.engine;
    if (key == "seed") {
      if (!(ls >> fuzzCase.seed)) return std::nullopt;
    } else if (key == "die") {
      if (!(ls >> die.xl >> die.yl >> die.xh >> die.yh)) return std::nullopt;
    } else if (key == "layers") {
      if (!(ls >> layers)) return std::nullopt;
    } else if (key == "window") {
      if (!(ls >> e.windowSize)) return std::nullopt;
    } else if (key == "rules") {
      if (!(ls >> e.rules.minWidth >> e.rules.minSpacing >> e.rules.minArea >>
            e.rules.maxFillSize >> e.rules.maxDensity))
        return std::nullopt;
    } else if (key == "planner") {
      if (!(ls >> e.plannerWeights.wSigma >> e.plannerWeights.wLine >>
            e.plannerWeights.wOutlier >> e.plannerWeights.betaSigma >>
            e.plannerWeights.betaLine >> e.plannerWeights.betaOutlier))
        return std::nullopt;
    } else if (key == "candidate") {
      int uniform = 0;
      if (!(ls >> e.candidate.lambda >> e.candidate.gamma >> uniform))
        return std::nullopt;
      e.candidate.uniformCells = uniform != 0;
    } else if (key == "sizer") {
      std::string backend;
      int useLp = 0;
      if (!(ls >> e.sizer.eta >> e.sizer.etaWireFactor >> e.sizer.iterations >>
            backend >> useLp))
        return std::nullopt;
      const auto b = backendFromName(backend);
      if (!b) return std::nullopt;
      e.sizer.backend = *b;
      e.sizer.useLpSolver = useLp != 0;
    } else if (key == "wire") {
      Wire w;
      if (!(ls >> w.layer >> w.rect.xl >> w.rect.yl >> w.rect.xh >> w.rect.yh))
        return std::nullopt;
      wires.push_back(w);
    }
    // Unknown keys are skipped for forward compatibility.
  }

  if (die.empty() || layers <= 0 || fuzzCase.engine.windowSize <= 0)
    return std::nullopt;
  fuzzCase.layout = layout::Layout(die, layers);
  for (const Wire& w : wires) {
    if (w.layer < 0 || w.layer >= layers) return std::nullopt;
    const geom::Rect clipped = w.rect.intersection(die);
    if (!clipped.empty()) fuzzCase.layout.layer(w.layer).wires.push_back(clipped);
  }
  return fuzzCase;
}

std::optional<FuzzCase> readReproFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return readRepro(buf.str());
}

}  // namespace ofl::verify
