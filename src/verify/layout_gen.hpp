// Seeded random layout/library builders shared by the fuzzer and the test
// suites (tests/test_util.hpp, tests/gds/gds_fuzz_test.cpp forward here).
//
// Everything is deterministic from the caller's Rng: the same seed yields
// the same geometry on every platform, which is what lets a fuzz failure be
// replayed from nothing but its seed. The layouts deliberately mix the
// textures that stress fill insertion — long routing bars, square macro
// blocks and empty channels — at randomized scale.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "gds/gds_writer.hpp"
#include "layout/layout.hpp"

namespace ofl::testing {

class LayoutGen {
 public:
  /// Random rect fully inside [0, extent)^2 with edges in [1, maxEdge].
  static geom::Rect randomRect(Rng& rng, geom::Coord extent,
                               geom::Coord maxEdge);

  struct LibraryParams {
    int minCells = 1;
    int maxCells = 3;
    int maxShapesPerCell = 40;
    geom::Coord coordExtent = 100000;  // coords in [-extent, extent]
    geom::Coord maxEdge = 5000;
    int maxLayer = 8;  // GDS layer numbers 1..maxLayer
  };

  /// Random flat GDS library (multiple cells, random layers/datatypes);
  /// the GDS round-trip fuzz workload.
  static gds::Library randomLibrary(Rng& rng, const LibraryParams& params);
  static gds::Library randomLibrary(Rng& rng) {
    return randomLibrary(rng, LibraryParams{});
  }

  struct LayoutParams {
    geom::Coord minDieExtent = 1500;
    geom::Coord maxDieExtent = 3600;
    int minLayers = 1;
    int maxLayers = 3;
    int minWiresPerLayer = 0;
    int maxWiresPerLayer = 40;
    geom::Coord wireWidthMin = 16;
    geom::Coord wireWidthMax = 60;
    /// Mean bar length as a fraction of the die extent (bars are clipped
    /// to the die).
    double barLengthFraction = 0.4;
    /// Probability a shape is a square-ish block instead of a bar.
    double blockProbability = 0.25;
  };

  /// Random multi-layer wire layout (no fills): horizontal/vertical bars
  /// plus occasional blocks, all inside a random die anchored at (0, 0).
  static layout::Layout randomLayout(Rng& rng, const LayoutParams& params);
  static layout::Layout randomLayout(Rng& rng) {
    return randomLayout(rng, LayoutParams{});
  }
};

}  // namespace ofl::testing
