// Reference oracles for differential verification.
//
// PRs 1-2 made the evaluator's inputs flow through parallel, cached and
// batched paths; the production `contest::Evaluator` therefore must not be
// its own judge. Everything here is re-derived from the paper's definitions
// with deliberately different algorithms than the production code:
//
//   * areas use slab decomposition (sort y-coordinates, merge 1-D interval
//     lists per slab) instead of the scanline Boolean engine;
//   * per-window and sliding densities recompute every window from scratch
//     instead of bucketing or prefix sums;
//   * metrics and scores are straight transliterations of Eqns. 1-4 with
//     long-double accumulation.
//
// Tolerances (asserted by tests/verify/oracle_test.cpp and used by the
// invariant checker):
//   * raw areas and densities are exact integer ratios — production and
//     oracle must agree to 1e-12 absolute per window;
//   * metric sums (sigma, lh, oh) accumulate in different orders — 1e-9
//     relative tolerance;
//   * scores are a fixed arithmetic combination — 1e-12 absolute.
#pragma once

#include <span>
#include <vector>

#include "contest/evaluator.hpp"
#include "density/density_map.hpp"
#include "density/metrics.hpp"
#include "density/sliding.hpp"
#include "layout/layout.hpp"
#include "layout/window_grid.hpp"

namespace ofl::verify {

/// Union area of one (possibly overlapping) rect set, by slab decomposition.
geom::Area oracleUnionArea(std::span<const geom::Rect> rects);

/// Intersection area of two rect sets (each point counted once), by slab
/// decomposition — the reference for geom::intersectionArea.
geom::Area oracleIntersectionArea(std::span<const geom::Rect> a,
                                  std::span<const geom::Rect> b);

/// Fill-induced overlay per adjacent layer pair (paper Section 2.1):
/// inter-layer overlap of wires+fills minus the wire-wire overlap that
/// existed before filling. Computed globally — no window bucketing — so it
/// cross-checks the evaluator's window-partitioned sum.
std::vector<double> oracleOverlay(const layout::Layout& layout);

/// Per-window density of a shape set: each window recomputed from scratch
/// (clip, slab union area, divide). Reference for DensityMap::compute /
/// computeFromShapes.
density::DensityMap oracleWindowDensity(const std::vector<geom::Rect>& shapes,
                                        const layout::WindowGrid& grid);

/// Sliding-window density, every position evaluated independently (no
/// shared prefix sums). Reference for density::computeSlidingDensity.
///
/// Precondition for exact agreement: windowSize must be a multiple of
/// steps. The production prefix-sum implementation quantizes each window's
/// covered block to steps tiles of floor(windowSize/steps) DBU, so for
/// non-divisible sizes it under-covers the stated w x w window — a known
/// limitation this oracle documents; callers (the invariant checker, the
/// fuzzer) snap window sizes to the divisible lattice.
density::DensityMap oracleSlidingDensity(
    const std::vector<geom::Rect>& shapes, const geom::Rect& die,
    const density::SlidingDensityOptions& options);

/// Eqns. 1-2 metrics straight from the definitions, long-double sums.
density::DensityMetrics oracleMetrics(const density::DensityMap& map);

/// Raw contest metrics (overlay, variation, line, outlier and their
/// per-layer vectors) recomputed entirely through the oracles above.
/// fileSizeMB and drcViolations are NOT populated — they have dedicated
/// checks (round-trip stability, DrcChecker) rather than a numeric oracle.
contest::RawMetrics oracleMeasure(const layout::Layout& layout,
                                  geom::Coord windowSize);

/// Eqns. 3-4 scoring straight from the definition. Reference for
/// Evaluator::score.
contest::ScoreBreakdown oracleScore(const contest::ScoreTable& table,
                                    const contest::RawMetrics& raw,
                                    double runtimeSeconds, double memoryMiB);

}  // namespace ofl::verify
