// Fuzz case = seed + wire layout + the solution-affecting engine options,
// serialized as a line-oriented text format so minimized repros in
// tests/corpus/ are reviewable in a diff and stable across platforms.
//
//   openfill-repro v1
//   seed 42
//   die 0 0 2400 2400
//   layers 2
//   window 800
//   rules <minWidth> <minSpacing> <minArea> <maxFillSize> <maxDensity>
//   planner <wSigma> <wLine> <wOutlier> <betaSigma> <betaLine> <betaOutlier>
//   candidate <lambda> <gamma> <uniformCells>
//   sizer <eta> <etaWireFactor> <iterations> <backend> <useLpSolver>
//   wire <layer> <xl> <yl> <xh> <yh>
//   ...
//
// `#` starts a comment (a leading comment block before the header is
// allowed); unknown keys are ignored (forward compatibility).
// The minimizer rewrites only `die`, `layers` and the `wire` lines.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "fill/fill_engine.hpp"
#include "layout/layout.hpp"

namespace ofl::verify {

struct FuzzCase {
  std::uint64_t seed = 0;
  /// Wires only; fills are produced by running the engine on a copy.
  layout::Layout layout{{0, 0, 1, 1}, 1};
  fill::FillEngineOptions engine;
};

/// Serializes `fuzzCase` to the text format above.
std::string writeRepro(const FuzzCase& fuzzCase);

/// Writes the repro file; returns false on I/O failure.
bool writeReproFile(const std::string& path, const FuzzCase& fuzzCase);

/// Parses a repro; nullopt on malformed input (bad header, bad numbers,
/// empty die, wires outside the die are clipped rather than rejected).
std::optional<FuzzCase> readRepro(const std::string& text);

/// Reads and parses a repro file; nullopt when unreadable or malformed.
std::optional<FuzzCase> readReproFile(const std::string& path);

}  // namespace ofl::verify
