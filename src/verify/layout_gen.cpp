#include "verify/layout_gen.hpp"

#include <algorithm>
#include <string>

namespace ofl::testing {

geom::Rect LayoutGen::randomRect(Rng& rng, geom::Coord extent,
                                 geom::Coord maxEdge) {
  const geom::Coord w = rng.uniformInt(1, maxEdge);
  const geom::Coord h = rng.uniformInt(1, maxEdge);
  const geom::Coord x = rng.uniformInt(0, extent - w);
  const geom::Coord y = rng.uniformInt(0, extent - h);
  return {x, y, x + w, y + h};
}

gds::Library LayoutGen::randomLibrary(Rng& rng, const LibraryParams& params) {
  gds::Library lib;
  lib.name = "FUZZ";
  const int cells =
      static_cast<int>(rng.uniformInt(params.minCells, params.maxCells));
  for (int c = 0; c < cells; ++c) {
    lib.cells.emplace_back();
    gds::Cell& cell = lib.cells.back();
    cell.name = "C" + std::to_string(c);
    const int shapes =
        static_cast<int>(rng.uniformInt(0, params.maxShapesPerCell));
    for (int s = 0; s < shapes; ++s) {
      const geom::Coord x =
          rng.uniformInt(-params.coordExtent, params.coordExtent);
      const geom::Coord y =
          rng.uniformInt(-params.coordExtent, params.coordExtent);
      const geom::Coord w = rng.uniformInt(1, params.maxEdge);
      const geom::Coord h = rng.uniformInt(1, params.maxEdge);
      gds::Writer::addRect(
          cell, static_cast<std::int16_t>(rng.uniformInt(1, params.maxLayer)),
          {x, y, x + w, y + h},
          static_cast<std::int16_t>(rng.uniformInt(0, 1)));
    }
  }
  return lib;
}

layout::Layout LayoutGen::randomLayout(Rng& rng, const LayoutParams& params) {
  const geom::Coord extent =
      rng.uniformInt(params.minDieExtent, params.maxDieExtent);
  const int layers =
      static_cast<int>(rng.uniformInt(params.minLayers, params.maxLayers));
  layout::Layout chip({0, 0, extent, extent}, layers);

  const auto meanBar = static_cast<geom::Coord>(
      std::max(1.0, params.barLengthFraction * static_cast<double>(extent)));
  for (int l = 0; l < layers; ++l) {
    const int wires = static_cast<int>(
        rng.uniformInt(params.minWiresPerLayer, params.maxWiresPerLayer));
    for (int i = 0; i < wires; ++i) {
      const geom::Coord width =
          rng.uniformInt(params.wireWidthMin, params.wireWidthMax);
      geom::Rect r;
      if (rng.bernoulli(params.blockProbability)) {
        // Square-ish macro block.
        const geom::Coord side = rng.uniformInt(width, 4 * width);
        r = {0, 0, side, std::max<geom::Coord>(1, side + rng.uniformInt(-width, width))};
      } else if (rng.bernoulli(0.5)) {
        // Horizontal bar.
        r = {0, 0, rng.uniformInt(width, 2 * meanBar), width};
      } else {
        // Vertical bar.
        r = {0, 0, width, rng.uniformInt(width, 2 * meanBar)};
      }
      const geom::Coord w = std::min(r.width(), extent);
      const geom::Coord h = std::min(r.height(), extent);
      const geom::Coord x = rng.uniformInt(0, extent - w);
      const geom::Coord y = rng.uniformInt(0, extent - h);
      chip.layer(l).wires.push_back({x, y, x + w, y + h});
    }
  }
  return chip;
}

}  // namespace ofl::testing
