#include "verify/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "contest/evaluator.hpp"
#include "contest/score_table.hpp"
#include "density/bounds.hpp"
#include "density/density_map.hpp"
#include "density/metrics.hpp"
#include "density/sliding.hpp"
#include "gds/gds_reader.hpp"
#include "gds/gds_writer.hpp"
#include "gds/oasis.hpp"
#include "layout/drc_checker.hpp"
#include "layout/fill_region.hpp"
#include "layout/window_grid.hpp"
#include "service/result_cache.hpp"
#include "verify/oracle.hpp"

namespace ofl::verify {
namespace {

using geom::Rect;

bool relClose(double a, double b, double relTol) {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) <= relTol * scale;
}

std::vector<Rect> layerShapes(const layout::Layout& chip, int l) {
  std::vector<Rect> shapes = chip.layer(l).wires;
  shapes.insert(shapes.end(), chip.layer(l).fills.begin(),
                chip.layer(l).fills.end());
  return shapes;
}

std::vector<Rect> sortedRects(std::vector<Rect> rects) {
  std::sort(rects.begin(), rects.end(), geom::RectYXLess{});
  return rects;
}

bool sameShapeSets(const layout::Layout& a, const layout::Layout& b,
                   std::string& detail) {
  if (a.numLayers() != b.numLayers()) {
    detail = "layer count changed";
    return false;
  }
  for (int l = 0; l < a.numLayers(); ++l) {
    if (sortedRects(a.layer(l).wires) != sortedRects(b.layer(l).wires)) {
      detail = "wires differ on layer " + std::to_string(l);
      return false;
    }
    if (sortedRects(a.layer(l).fills) != sortedRects(b.layer(l).fills)) {
      detail = "fills differ on layer " + std::to_string(l);
      return false;
    }
  }
  return true;
}

/// Snaps a window size onto the steps lattice the sliding prefix-sum
/// implementation is exact on (see oracle.hpp).
geom::Coord snapWindow(geom::Coord windowSize, int steps) {
  const geom::Coord snapped = (windowSize / steps) * steps;
  return std::max<geom::Coord>(snapped, steps);
}

void escapeJson(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

std::string toString(FaultClass fault) {
  switch (fault) {
    case FaultClass::kNone:
      return "none";
    case FaultClass::kSpacing:
      return "spacing";
    case FaultClass::kDensity:
      return "density";
    case FaultClass::kOverlay:
      return "overlay";
    case FaultClass::kDeterminism:
      return "determinism";
  }
  return "none";
}

std::optional<FaultClass> faultClassFromString(const std::string& name) {
  if (name == "spacing") return FaultClass::kSpacing;
  if (name == "density") return FaultClass::kDensity;
  if (name == "overlay") return FaultClass::kOverlay;
  if (name == "determinism") return FaultClass::kDeterminism;
  if (name == "none") return FaultClass::kNone;
  return std::nullopt;
}

bool VerifyReport::allPassed() const {
  return std::all_of(checks.begin(), checks.end(),
                     [](const CheckResult& c) { return c.passed; });
}

bool VerifyReport::ok() const {
  return injected == FaultClass::kNone ? allPassed() : injectionDetected;
}

const CheckResult* VerifyReport::find(const std::string& name) const {
  for (const CheckResult& c : checks) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string toJson(const VerifyReport& report) {
  std::ostringstream out;
  out << "{\n  \"checks\": [\n";
  for (std::size_t i = 0; i < report.checks.size(); ++i) {
    const CheckResult& c = report.checks[i];
    out << "    {\"name\": \"";
    escapeJson(out, c.name);
    out << "\", \"passed\": " << (c.passed ? "true" : "false")
        << ", \"detail\": \"";
    escapeJson(out, c.detail);
    out << "\"}";
    if (i + 1 < report.checks.size()) out << ",";
    out << "\n";
  }
  out << "  ],\n";
  out << "  \"injected\": \"" << toString(report.injected) << "\",\n";
  out << "  \"injectionDetected\": "
      << (report.injectionDetected ? "true" : "false") << ",\n";
  out << "  \"allPassed\": " << (report.allPassed() ? "true" : "false")
      << ",\n";
  out << "  \"ok\": " << (report.ok() ? "true" : "false") << "\n";
  out << "}\n";
  return out.str();
}

VerifyReport InvariantChecker::check(const layout::Layout& filled) const {
  VerifyReport report;
  report.injected = options_.inject;
  layout::Layout chip = filled;  // injections mutate only the copy
  const layout::DesignRules& rules = options_.engine.rules;
  const layout::WindowGrid grid(chip.die(), options_.engine.windowSize);

  // --- Fault injection (on the solution itself) ---------------------------
  if (options_.inject == FaultClass::kSpacing) {
    // Clone a fill at an illegal gap (or fabricate a too-close pair).
    const geom::Coord gap = std::max<geom::Coord>(rules.minSpacing - 1, 0);
    bool placed = false;
    for (int l = 0; l < chip.numLayers() && !placed; ++l) {
      if (chip.layer(l).fills.empty()) continue;
      const Rect f = chip.layer(l).fills.front();
      const Rect clone{f.xh + gap, f.yl, f.xh + gap + f.width(), f.yh};
      chip.layer(l).fills.push_back(clone.intersection(chip.die()).empty()
                                        ? Rect{f.xl - gap - f.width(), f.yl,
                                               f.xl - gap, f.yh}
                                        : clone);
      placed = true;
    }
    if (!placed && chip.numLayers() > 0) {
      const geom::Coord w = std::max<geom::Coord>(rules.minWidth, 1);
      chip.layer(0).fills.push_back({0, 0, w, w});
      chip.layer(0).fills.push_back({w + gap, 0, 2 * w + gap, w});
    }
  } else if (options_.inject == FaultClass::kDensity) {
    // Cover the most-constrained window (smallest upper bound) completely:
    // its density becomes 1, above u whenever any capacity is withheld.
    int bestLayer = 0;
    int bestWindow = 0;
    double bestUpper = std::numeric_limits<double>::infinity();
    for (int l = 0; l < chip.numLayers(); ++l) {
      const auto regions = layout::computeFillRegions(chip, l, grid, rules);
      const density::DensityBounds bounds =
          density::computeBounds(chip, l, grid, regions, rules);
      for (std::size_t w = 0; w < bounds.upper.size(); ++w) {
        if (bounds.upper[w] < bestUpper) {
          bestUpper = bounds.upper[w];
          bestLayer = l;
          bestWindow = static_cast<int>(w);
        }
      }
    }
    if (chip.numLayers() > 0 && grid.windowCount() > 0) {
      chip.layer(bestLayer).fills.push_back(grid.windowRect(
          bestWindow % grid.cols(), bestWindow / grid.cols()));
    }
  }
  // kOverlay biases the measured-vs-oracle comparison below; kDeterminism
  // perturbs the second engine run. Both prove the COMPARISON has teeth.

  // --- fills-inside-region ------------------------------------------------
  {
    CheckResult c{"fills-inside-region", true, ""};
    for (int l = 0; l < chip.numLayers() && c.passed; ++l) {
      const geom::Region region =
          layout::computeLayerFillRegion(chip, l, rules);
      const std::vector<Rect>& fills = chip.layer(l).fills;
      // Point-set containment in one sweep: every fill-covered point lies
      // inside the region iff the region covers the fills' whole union.
      const geom::Area covered =
          oracleIntersectionArea(region.rects(), fills);
      const geom::Area fillUnion = oracleUnionArea(fills);
      bool inDie = true;
      for (const Rect& f : fills) {
        if (!chip.die().contains(f)) {
          inDie = false;
          c.passed = false;
          c.detail = "layer " + std::to_string(l) + " fill " + f.str() +
                     " outside the die";
          break;
        }
      }
      if (inDie && covered != fillUnion) {
        c.passed = false;
        // Slow per-fill scan only on the failure path, for the message.
        for (const Rect& f : fills) {
          const Rect one[] = {f};
          if (oracleIntersectionArea(region.rects(), one) != f.area()) {
            c.detail = "layer " + std::to_string(l) + " fill " + f.str() +
                       " outside legal fill region";
            break;
          }
        }
        if (c.detail.empty())
          c.detail = "layer " + std::to_string(l) +
                     " fills extend outside legal fill region";
      }
    }
    if (c.passed)
      c.detail = std::to_string(chip.fillCount()) + " fills contained";
    report.checks.push_back(std::move(c));
  }

  // --- drc-clean ----------------------------------------------------------
  {
    CheckResult c{"drc-clean", true, ""};
    const auto violations =
        layout::DrcChecker(rules).check(chip, /*maxViolations=*/10);
    if (!violations.empty()) {
      c.passed = false;
      c.detail = std::to_string(violations.size()) + "+ violations, first: " +
                 violations.front().str();
    } else {
      c.detail = "no violations";
    }
    report.checks.push_back(std::move(c));
  }

  // --- density-bounds -----------------------------------------------------
  {
    CheckResult c{"density-bounds", true, ""};
    for (int l = 0; l < chip.numLayers() && c.passed; ++l) {
      const auto regions = layout::computeFillRegions(chip, l, grid, rules);
      const density::DensityBounds bounds =
          density::computeBounds(chip, l, grid, regions, rules);
      const density::DensityMap achieved =
          oracleWindowDensity(layerShapes(chip, l), grid);
      for (int w = 0; w < achieved.count(); ++w) {
        const double d = achieved.values()[static_cast<std::size_t>(w)];
        const double lo = bounds.lower[static_cast<std::size_t>(w)];
        const double hi = bounds.upper[static_cast<std::size_t>(w)];
        if (d < lo - options_.densityTolerance ||
            d > hi + options_.densityTolerance) {
          std::ostringstream msg;
          msg << "layer " << l << " window " << w << ": density " << d
              << " outside [" << lo << ", " << hi << "]";
          c.passed = false;
          c.detail = msg.str();
          break;
        }
      }
    }
    if (c.passed) c.detail = "all windows within planned bounds";
    report.checks.push_back(std::move(c));
  }

  // --- gds-roundtrip ------------------------------------------------------
  {
    CheckResult c{"gds-roundtrip", true, ""};
    const gds::Library lib = chip.toGds();
    const auto bytes = gds::Writer::serialize(lib);
    if (bytes != gds::Writer::serialize(chip.toGds())) {
      c.passed = false;
      c.detail = "GDS serialization is not byte-stable";
    } else {
      const auto parsed = gds::Reader::parse(bytes);
      if (!parsed) {
        c.passed = false;
        c.detail = "GDS stream did not parse back";
      } else {
        const layout::Layout back =
            layout::Layout::fromGds(*parsed, chip.die(), chip.numLayers());
        if (!sameShapeSets(chip, back, c.detail)) c.passed = false;
      }
    }
    if (c.passed)
      c.detail = std::to_string(bytes.size()) + " bytes, stable round-trip";
    report.checks.push_back(std::move(c));
  }

  // --- oasis-roundtrip ----------------------------------------------------
  {
    CheckResult c{"oasis-roundtrip", true, ""};
    const gds::Library lib = chip.toGds();
    const auto bytes = gds::OasisWriter::serialize(lib);
    if (bytes != gds::OasisWriter::serialize(chip.toGds())) {
      c.passed = false;
      c.detail = "OASIS serialization is not byte-stable";
    } else {
      const auto parsed = gds::OasisReader::parse(bytes);
      if (!parsed) {
        c.passed = false;
        c.detail = "OASIS stream did not parse back";
      } else {
        const layout::Layout back =
            layout::Layout::fromGds(*parsed, chip.die(), chip.numLayers());
        if (!sameShapeSets(chip, back, c.detail)) c.passed = false;
      }
    }
    if (c.passed)
      c.detail = std::to_string(bytes.size()) + " bytes, stable round-trip";
    report.checks.push_back(std::move(c));
  }

  // --- oracle-density -----------------------------------------------------
  {
    CheckResult c{"oracle-density", true, ""};
    for (int l = 0; l < chip.numLayers() && c.passed; ++l) {
      const density::DensityMap prod =
          density::DensityMap::compute(chip, l, grid);
      const density::DensityMap ref =
          oracleWindowDensity(layerShapes(chip, l), grid);
      for (int w = 0; w < prod.count(); ++w) {
        const double a = prod.values()[static_cast<std::size_t>(w)];
        const double b = ref.values()[static_cast<std::size_t>(w)];
        if (std::abs(a - b) > options_.densityTolerance) {
          std::ostringstream msg;
          msg << "layer " << l << " window " << w << ": production " << a
              << " vs oracle " << b;
          c.passed = false;
          c.detail = msg.str();
          break;
        }
      }
    }
    if (c.passed) c.detail = "per-window densities agree";
    report.checks.push_back(std::move(c));
  }

  // --- oracle-sliding -----------------------------------------------------
  {
    CheckResult c{"oracle-sliding", true, ""};
    density::SlidingDensityOptions sopt;
    sopt.steps = 4;
    sopt.windowSize = snapWindow(options_.engine.windowSize, sopt.steps);
    for (int l = 0; l < chip.numLayers() && c.passed; ++l) {
      const std::vector<Rect> shapes = layerShapes(chip, l);
      const density::DensityMap prod =
          density::computeSlidingDensity(shapes, chip.die(), sopt);
      const density::DensityMap ref =
          oracleSlidingDensity(shapes, chip.die(), sopt);
      if (prod.cols() != ref.cols() || prod.rows() != ref.rows()) {
        c.passed = false;
        c.detail = "sliding grids differ on layer " + std::to_string(l);
        break;
      }
      for (int w = 0; w < prod.count(); ++w) {
        const double a = prod.values()[static_cast<std::size_t>(w)];
        const double b = ref.values()[static_cast<std::size_t>(w)];
        if (std::abs(a - b) > options_.densityTolerance) {
          std::ostringstream msg;
          msg << "layer " << l << " position " << w << ": production " << a
              << " vs oracle " << b;
          c.passed = false;
          c.detail = msg.str();
          break;
        }
      }
    }
    if (c.passed) c.detail = "sliding-window densities agree";
    report.checks.push_back(std::move(c));
  }

  // --- oracle-metrics -----------------------------------------------------
  {
    CheckResult c{"oracle-metrics", true, ""};
    for (int l = 0; l < chip.numLayers() && c.passed; ++l) {
      const density::DensityMap map =
          density::DensityMap::compute(chip, l, grid);
      const density::DensityMetrics prod = density::computeMetrics(map);
      const density::DensityMetrics ref = oracleMetrics(map);
      const double tol = options_.metricTolerance;
      if (!relClose(prod.mean, ref.mean, tol) ||
          !relClose(prod.sigma, ref.sigma, tol) ||
          !relClose(prod.lineHotspot, ref.lineHotspot, tol) ||
          !relClose(prod.outlierHotspot, ref.outlierHotspot, tol)) {
        std::ostringstream msg;
        msg << "layer " << l << ": production (sigma " << prod.sigma << ", lh "
            << prod.lineHotspot << ", oh " << prod.outlierHotspot
            << ") vs oracle (sigma " << ref.sigma << ", lh " << ref.lineHotspot
            << ", oh " << ref.outlierHotspot << ")";
        c.passed = false;
        c.detail = msg.str();
      }
    }
    if (c.passed) c.detail = "sigma / line / outlier agree";
    report.checks.push_back(std::move(c));
  }

  // --- oracle-evaluator + oracle-score ------------------------------------
  {
    const contest::ScoreTable table = contest::scoreTableFor(options_.suite);
    const contest::Evaluator evaluator(options_.engine.windowSize, table,
                                       rules);
    const contest::RawMetrics prod = evaluator.measure(chip);
    const contest::RawMetrics ref =
        oracleMeasure(chip, options_.engine.windowSize);

    CheckResult c{"oracle-evaluator", true, ""};
    const double tol = options_.metricTolerance;
    double measuredOverlay = prod.overlay;
    if (options_.inject == FaultClass::kOverlay) {
      // Bias the measured value past the tolerance band: if the check still
      // "passes", the overlay comparison is vacuous.
      measuredOverlay += (std::abs(measuredOverlay) + 1.0) * 1e-3;
    }
    if (!relClose(measuredOverlay, ref.overlay, tol)) {
      std::ostringstream msg;
      msg << "overlay: production " << measuredOverlay << " vs oracle "
          << ref.overlay;
      c.passed = false;
      c.detail = msg.str();
    } else if (prod.pairOverlay.size() != ref.pairOverlay.size()) {
      c.passed = false;
      c.detail = "layer-pair overlay counts differ";
    } else if (!relClose(prod.variation, ref.variation, tol) ||
               !relClose(prod.line, ref.line, tol) ||
               !relClose(prod.outlier, ref.outlier, tol)) {
      std::ostringstream msg;
      msg << "metrics: production (var " << prod.variation << ", line "
          << prod.line << ", outlier " << prod.outlier << ") vs oracle (var "
          << ref.variation << ", line " << ref.line << ", outlier "
          << ref.outlier << ")";
      c.passed = false;
      c.detail = msg.str();
    } else {
      for (std::size_t p = 0; p < prod.pairOverlay.size(); ++p) {
        if (!relClose(prod.pairOverlay[p], ref.pairOverlay[p], tol)) {
          std::ostringstream msg;
          msg << "pair " << p << " overlay: production " << prod.pairOverlay[p]
              << " vs oracle " << ref.pairOverlay[p];
          c.passed = false;
          c.detail = msg.str();
          break;
        }
      }
    }
    if (c.passed) c.detail = "raw contest metrics agree";
    report.checks.push_back(std::move(c));

    CheckResult s{"oracle-score", true, ""};
    const double runtimeSeconds = 1.0;
    const double memoryMiB = 256.0;
    const contest::ScoreBreakdown prodScore =
        evaluator.score(prod, runtimeSeconds, memoryMiB);
    const contest::ScoreBreakdown refScore =
        oracleScore(table, prod, runtimeSeconds, memoryMiB);
    const double stol = 1e-12;
    if (std::abs(prodScore.quality - refScore.quality) > stol ||
        std::abs(prodScore.total - refScore.total) > stol ||
        std::abs(prodScore.overlay - refScore.overlay) > stol ||
        std::abs(prodScore.variation - refScore.variation) > stol ||
        std::abs(prodScore.line - refScore.line) > stol ||
        std::abs(prodScore.outlier - refScore.outlier) > stol ||
        std::abs(prodScore.size - refScore.size) > stol) {
      std::ostringstream msg;
      msg << "score: production total " << prodScore.total << " vs oracle "
          << refScore.total;
      s.passed = false;
      s.detail = msg.str();
    } else {
      s.detail = "Eqn. 3-4 scores agree";
    }
    report.checks.push_back(std::move(s));
  }

  // --- determinism --------------------------------------------------------
  if (options_.checkDeterminism) {
    CheckResult c{"determinism", true, ""};
    layout::Layout base = chip;
    base.clearFills();

    fill::FillEngineOptions serialOpts = options_.engine;
    serialOpts.numThreads = 1;
    serialOpts.cancel = nullptr;
    layout::Layout runA = base;
    const fill::FillReport reportA = fill::FillEngine(serialOpts).run(runA);
    const auto bytesA = gds::Writer::serialize(runA.toGds());

    fill::FillEngineOptions threadedOpts = serialOpts;
    threadedOpts.numThreads = std::max(options_.determinismThreads, 2);
    layout::Layout runB = base;
    fill::FillEngine(threadedOpts).run(runB);
    if (options_.inject == FaultClass::kDeterminism) {
      // Simulate a thread-count-dependent result: nudge run B's output.
      bool nudged = false;
      for (int l = 0; l < runB.numLayers() && !nudged; ++l) {
        if (!runB.layer(l).fills.empty()) {
          Rect& f = runB.layer(l).fills.front();
          if (f.width() > 1) {
            f.xh -= 1;
          } else {
            f.yh += 1;
          }
          nudged = true;
        }
      }
      if (!nudged && runB.numLayers() > 0) {
        runB.layer(0).fills.push_back({0, 0, 1, 1});
      }
    }
    const auto bytesB = gds::Writer::serialize(runB.toGds());

    // Cache replay path: capture run A, apply onto a fresh copy.
    layout::Layout runC = base;
    service::CachedFill::capture(runA, reportA)->applyTo(runC);
    const auto bytesC = gds::Writer::serialize(runC.toGds());

    if (bytesA != bytesB) {
      c.passed = false;
      c.detail = "1-thread vs " + std::to_string(threadedOpts.numThreads) +
                 "-thread output differs";
    } else if (bytesA != bytesC) {
      c.passed = false;
      c.detail = "cache capture/apply replay differs from direct run";
    } else {
      c.detail = "1 vs " + std::to_string(threadedOpts.numThreads) +
                 " threads vs cache replay byte-identical";
    }
    report.checks.push_back(std::move(c));
  }

  // --- injection verdict --------------------------------------------------
  switch (options_.inject) {
    case FaultClass::kNone:
      break;
    case FaultClass::kSpacing: {
      const CheckResult* drc = report.find("drc-clean");
      const CheckResult* region = report.find("fills-inside-region");
      report.injectionDetected =
          (drc && !drc->passed) || (region && !region->passed);
      break;
    }
    case FaultClass::kDensity: {
      const CheckResult* bounds = report.find("density-bounds");
      report.injectionDetected = bounds && !bounds->passed;
      break;
    }
    case FaultClass::kOverlay: {
      const CheckResult* evaluator = report.find("oracle-evaluator");
      report.injectionDetected = evaluator && !evaluator->passed;
      break;
    }
    case FaultClass::kDeterminism: {
      const CheckResult* det = report.find("determinism");
      report.injectionDetected = det && !det->passed;
      break;
    }
  }
  return report;
}

}  // namespace ofl::verify
