#include "verify/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace ofl::verify {
namespace {

using geom::Area;
using geom::Coord;
using geom::Rect;

/// 1-D closed-open interval; slabs reduce 2-D area to lists of these.
struct Span1d {
  Coord lo = 0;
  Coord hi = 0;
};

/// Total length covered by a set of (possibly overlapping) intervals.
/// Sorts by lo and merges; the classic textbook sweep.
Coord mergedLength(std::vector<Span1d>& spans) {
  if (spans.empty()) return 0;
  std::sort(spans.begin(), spans.end(),
            [](const Span1d& a, const Span1d& b) { return a.lo < b.lo; });
  Coord total = 0;
  Coord curLo = spans.front().lo;
  Coord curHi = spans.front().hi;
  for (std::size_t k = 1; k < spans.size(); ++k) {
    if (spans[k].lo > curHi) {
      total += curHi - curLo;
      curLo = spans[k].lo;
      curHi = spans[k].hi;
    } else {
      curHi = std::max(curHi, spans[k].hi);
    }
  }
  total += curHi - curLo;
  return total;
}

/// Merges into a sorted disjoint interval list (for set intersection).
std::vector<Span1d> mergedSpans(std::vector<Span1d>& spans) {
  std::vector<Span1d> out;
  if (spans.empty()) return out;
  std::sort(spans.begin(), spans.end(),
            [](const Span1d& a, const Span1d& b) { return a.lo < b.lo; });
  out.push_back(spans.front());
  for (std::size_t k = 1; k < spans.size(); ++k) {
    if (spans[k].lo > out.back().hi) {
      out.push_back(spans[k]);
    } else {
      out.back().hi = std::max(out.back().hi, spans[k].hi);
    }
  }
  return out;
}

/// Overlap length of two sorted disjoint interval lists (two pointers).
Coord intersectLength(const std::vector<Span1d>& a,
                      const std::vector<Span1d>& b) {
  Coord total = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const Coord lo = std::max(a[i].lo, b[j].lo);
    const Coord hi = std::min(a[i].hi, b[j].hi);
    if (hi > lo) total += hi - lo;
    if (a[i].hi < b[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

/// Sorted unique y-coordinates (slab boundaries) of non-empty rects.
std::vector<Coord> slabBoundaries(std::span<const Rect> rects,
                                  std::span<const Rect> more = {}) {
  std::vector<Coord> ys;
  ys.reserve(2 * (rects.size() + more.size()));
  for (const Rect& r : rects) {
    if (r.empty()) continue;
    ys.push_back(r.yl);
    ys.push_back(r.yh);
  }
  for (const Rect& r : more) {
    if (r.empty()) continue;
    ys.push_back(r.yl);
    ys.push_back(r.yh);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  return ys;
}

/// Active-list slab sweep: rects enter when the sweep reaches their yl and
/// expire at their yh, so each slab only pays for the rects that cross it
/// (instead of rescanning the whole input per slab).
class SlabSweep {
 public:
  explicit SlabSweep(std::span<const Rect> rects) {
    rects_.reserve(rects.size());
    for (const Rect& r : rects) {
      if (!r.empty()) rects_.push_back(r);
    }
    std::sort(rects_.begin(), rects_.end(),
              [](const Rect& a, const Rect& b) { return a.yl < b.yl; });
  }

  /// X-intervals of rects crossing slab [y0, y1). Slab boundaries come
  /// from slabBoundaries(), so every active rect fully spans the slab.
  /// Must be called with non-decreasing y0.
  const std::vector<Span1d>& advanceTo(Coord y0) {
    std::erase_if(active_, [y0](const Rect& r) { return r.yh <= y0; });
    while (next_ < rects_.size() && rects_[next_].yl <= y0) {
      if (rects_[next_].yh > y0) active_.push_back(rects_[next_]);
      ++next_;
    }
    spans_.clear();
    for (const Rect& r : active_) spans_.push_back({r.xl, r.xh});
    return spans_;
  }

 private:
  std::vector<Rect> rects_;
  std::vector<Rect> active_;
  std::vector<Span1d> spans_;
  std::size_t next_ = 0;
};

}  // namespace

Area oracleUnionArea(std::span<const Rect> rects) {
  const std::vector<Coord> ys = slabBoundaries(rects);
  SlabSweep sweep(rects);
  Area total = 0;
  for (std::size_t k = 0; k + 1 < ys.size(); ++k) {
    const Coord y0 = ys[k];
    const Coord y1 = ys[k + 1];
    std::vector<Span1d> spans = sweep.advanceTo(y0);
    total += static_cast<Area>(mergedLength(spans)) * (y1 - y0);
  }
  return total;
}

Area oracleIntersectionArea(std::span<const Rect> a, std::span<const Rect> b) {
  const std::vector<Coord> ys = slabBoundaries(a, b);
  SlabSweep sweepA(a);
  SlabSweep sweepB(b);
  Area total = 0;
  for (std::size_t k = 0; k + 1 < ys.size(); ++k) {
    const Coord y0 = ys[k];
    const Coord y1 = ys[k + 1];
    std::vector<Span1d> rawA = sweepA.advanceTo(y0);
    std::vector<Span1d> rawB = sweepB.advanceTo(y0);
    if (rawA.empty() || rawB.empty()) continue;
    const std::vector<Span1d> mergedA = mergedSpans(rawA);
    const std::vector<Span1d> mergedB = mergedSpans(rawB);
    total += static_cast<Area>(intersectLength(mergedA, mergedB)) * (y1 - y0);
  }
  return total;
}

std::vector<double> oracleOverlay(const layout::Layout& layout) {
  std::vector<double> pairs;
  for (int l = 0; l + 1 < layout.numLayers(); ++l) {
    std::vector<Rect> lower = layout.layer(l).wires;
    lower.insert(lower.end(), layout.layer(l).fills.begin(),
                 layout.layer(l).fills.end());
    std::vector<Rect> upper = layout.layer(l + 1).wires;
    upper.insert(upper.end(), layout.layer(l + 1).fills.begin(),
                 layout.layer(l + 1).fills.end());
    const Area all = oracleIntersectionArea(lower, upper);
    const Area wiresOnly = oracleIntersectionArea(layout.layer(l).wires,
                                                  layout.layer(l + 1).wires);
    pairs.push_back(static_cast<double>(all - wiresOnly));
  }
  return pairs;
}

density::DensityMap oracleWindowDensity(const std::vector<Rect>& shapes,
                                        const layout::WindowGrid& grid) {
  std::vector<double> values(static_cast<std::size_t>(grid.windowCount()),
                             0.0);
  for (int j = 0; j < grid.rows(); ++j) {
    for (int i = 0; i < grid.cols(); ++i) {
      const Rect window = grid.windowRect(i, j);
      const Area windowArea = window.area();
      if (windowArea <= 0) continue;
      std::vector<Rect> clipped;
      for (const Rect& s : shapes) {
        const Rect c = s.intersection(window);
        if (!c.empty()) clipped.push_back(c);
      }
      values[static_cast<std::size_t>(grid.flatIndex(i, j))] =
          static_cast<double>(oracleUnionArea(clipped)) /
          static_cast<double>(windowArea);
    }
  }
  return density::DensityMap(grid.cols(), grid.rows(), std::move(values));
}

density::DensityMap oracleSlidingDensity(
    const std::vector<Rect>& shapes, const Rect& die,
    const density::SlidingDensityOptions& options) {
  const int r = std::max(options.steps, 1);
  const Coord stride = std::max<Coord>(options.windowSize / r, 1);
  // Same position lattice as the production code: one anchor per stride,
  // tc/tr tile counts from the fine grid, window count max(tc - r + 1, 1).
  const layout::WindowGrid tiles(die, stride);
  const int cols = std::max(tiles.cols() - r + 1, 1);
  const int rows = std::max(tiles.rows() - r + 1, 1);
  std::vector<double> values(static_cast<std::size_t>(cols) * rows, 0.0);
  for (int j = 0; j < rows; ++j) {
    for (int i = 0; i < cols; ++i) {
      const Coord xl = die.xl + i * stride;
      const Coord yl = die.yl + j * stride;
      const Rect window{xl, yl, std::min(xl + options.windowSize, die.xh),
                        std::min(yl + options.windowSize, die.yh)};
      const Area area = window.area();
      if (area <= 0) continue;
      std::vector<Rect> clipped;
      for (const Rect& s : shapes) {
        const Rect c = s.intersection(window);
        if (!c.empty()) clipped.push_back(c);
      }
      values[static_cast<std::size_t>(j) * cols + i] =
          static_cast<double>(oracleUnionArea(clipped)) /
          static_cast<double>(area);
    }
  }
  return density::DensityMap(cols, rows, std::move(values));
}

density::DensityMetrics oracleMetrics(const density::DensityMap& map) {
  density::DensityMetrics m;
  const std::vector<double>& v = map.values();
  if (v.empty()) return m;
  const auto n = static_cast<long double>(v.size());

  long double sum = 0.0L;
  for (double d : v) sum += d;
  const long double mean = sum / n;

  long double varSum = 0.0L;
  for (double d : v) {
    const long double dev = static_cast<long double>(d) - mean;
    varSum += dev * dev;
  }
  const long double sigma = std::sqrt(varSum / n);

  // Eqn. 1: per-column mean, then sum of |d(i,j) - columnMean_i|.
  long double lh = 0.0L;
  for (int i = 0; i < map.cols(); ++i) {
    long double colSum = 0.0L;
    for (int j = 0; j < map.rows(); ++j) colSum += map.at(i, j);
    const long double colMean = colSum / static_cast<long double>(map.rows());
    for (int j = 0; j < map.rows(); ++j) {
      lh += std::abs(static_cast<long double>(map.at(i, j)) - colMean);
    }
  }

  // Eqn. 2: mass beyond the 3-sigma band around the mean.
  long double oh = 0.0L;
  for (double d : v) {
    const long double excess =
        std::abs(static_cast<long double>(d) - mean) - 3.0L * sigma;
    if (excess > 0.0L) oh += excess;
  }

  m.mean = static_cast<double>(mean);
  m.sigma = static_cast<double>(sigma);
  m.lineHotspot = static_cast<double>(lh);
  m.outlierHotspot = static_cast<double>(oh);
  return m;
}

contest::RawMetrics oracleMeasure(const layout::Layout& layout,
                                  Coord windowSize) {
  contest::RawMetrics raw;
  const layout::WindowGrid grid(layout.die(), windowSize);

  double sigmaSum = 0.0;
  double ohSum = 0.0;
  for (int l = 0; l < layout.numLayers(); ++l) {
    std::vector<Rect> shapes = layout.layer(l).wires;
    shapes.insert(shapes.end(), layout.layer(l).fills.begin(),
                  layout.layer(l).fills.end());
    const density::DensityMap map = oracleWindowDensity(shapes, grid);
    const density::DensityMetrics m = oracleMetrics(map);
    raw.layerSigma.push_back(m.sigma);
    raw.layerLine.push_back(m.lineHotspot);
    raw.layerOutlier.push_back(m.outlierHotspot);
    raw.variation += m.sigma;
    raw.line += m.lineHotspot;
    sigmaSum += m.sigma;
    ohSum += m.outlierHotspot;
  }
  raw.outlier = sigmaSum * ohSum;

  raw.pairOverlay = oracleOverlay(layout);
  for (double p : raw.pairOverlay) raw.overlay += p;

  raw.fillCount = layout.fillCount();
  return raw;
}

contest::ScoreBreakdown oracleScore(const contest::ScoreTable& table,
                                    const contest::RawMetrics& raw,
                                    double runtimeSeconds, double memoryMiB) {
  // Eqn. 4 written out longhand rather than via ScoreCoefficients::score.
  const auto f = [](double x, double beta) {
    return std::max(0.0, 1.0 - x / beta);
  };
  contest::ScoreBreakdown s;
  s.overlay = f(raw.overlay, table.overlay.beta);
  s.variation = f(raw.variation, table.variation.beta);
  s.line = f(raw.line, table.line.beta);
  s.outlier = f(raw.outlier, table.outlier.beta);
  s.size = f(raw.fileSizeMB, table.size.beta);
  s.runtime = f(runtimeSeconds, table.runtime.beta);
  s.memory = f(memoryMiB, table.memory.beta);
  s.quality = table.overlay.alpha * s.overlay +
              table.variation.alpha * s.variation + table.line.alpha * s.line +
              table.outlier.alpha * s.outlier + table.size.alpha * s.size;
  s.total = s.quality + table.runtime.alpha * s.runtime +
            table.memory.alpha * s.memory;
  return s;
}

}  // namespace ofl::verify
