// Invariant checker over a fill solution (`openfill check`).
//
// Runs every verifiable contract this library promises about a filled
// layout, each as a named pass/fail check:
//
//   fills-inside-region  every fill inside its layer's legal fill region
//                        (die minus wires inflated by min spacing)
//   drc-clean            DrcChecker finds no violation among the fills
//   density-bounds       achieved window density within the planned
//                        [l(i,j), u(i,j)] band of density/bounds
//   gds-roundtrip        GDS serialize -> parse -> rebuild reproduces the
//                        exact shape sets; serialization is byte-stable
//   oasis-roundtrip      same through the OASIS writer/reader
//   oracle-density       DensityMap::compute vs the slab-decomposition
//                        oracle, per window
//   oracle-sliding       computeSlidingDensity vs the naive oracle (window
//                        snapped to the steps lattice, see oracle.hpp)
//   oracle-metrics       computeMetrics vs long-double transliteration
//   oracle-evaluator     Evaluator::measure raw metrics (overlay pairs,
//                        variation, line, outlier) vs oracleMeasure
//   oracle-score         Evaluator::score vs direct Eqn. 3-4 arithmetic
//   determinism          re-fill from the wires at 1 thread vs N threads
//                        vs a ResultCache capture/apply replay — all three
//                        GDS byte-identical (PR-1/PR-2 contract)
//
// Fault injection (--inject) corrupts the solution (or the comparison) in
// one of four class-specific ways and then requires that the targeted
// check FAILS — proving the net can actually catch that violation class.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fill/fill_engine.hpp"
#include "layout/layout.hpp"

namespace ofl::verify {

enum class FaultClass { kNone, kSpacing, kDensity, kOverlay, kDeterminism };

std::string toString(FaultClass fault);
/// Parses "spacing" | "density" | "overlay" | "determinism".
std::optional<FaultClass> faultClassFromString(const std::string& name);

struct CheckResult {
  std::string name;
  bool passed = false;
  std::string detail;  // first failure site, or a one-line summary
};

struct VerifyReport {
  std::vector<CheckResult> checks;
  FaultClass injected = FaultClass::kNone;
  /// True when the check(s) mapped to the injected class failed.
  bool injectionDetected = false;

  bool allPassed() const;
  /// Overall verdict: with no injection, all checks pass; with injection,
  /// the targeted violation was detected (other checks may also fail —
  /// the corruption is real).
  bool ok() const;

  const CheckResult* find(const std::string& name) const;
};

std::string toJson(const VerifyReport& report);

class InvariantChecker {
 public:
  struct Options {
    /// Engine options the solution claims to satisfy (rules, window size)
    /// and that the determinism check re-runs with.
    fill::FillEngineOptions engine;
    /// Score table suite for the oracle-score check.
    std::string suite = "s";
    /// Absolute tolerance on per-window density comparisons (integer area
    /// ratios; production and oracle agree to rounding).
    double densityTolerance = 1e-9;
    /// Relative tolerance on accumulated metric sums (different
    /// summation orders).
    double metricTolerance = 1e-9;
    FaultClass inject = FaultClass::kNone;
    /// The determinism check runs the engine three times; allow skipping
    /// it on large inputs (`openfill check --skip-determinism`).
    bool checkDeterminism = true;
    int determinismThreads = 4;
  };

  explicit InvariantChecker(Options options) : options_(std::move(options)) {}

  /// Verifies `filled` (wires + fills). The layout is copied; injection
  /// mutations never touch the caller's data.
  VerifyReport check(const layout::Layout& filled) const;

 private:
  Options options_;
};

}  // namespace ofl::verify
