// Scanline Boolean operations on rectilinear regions given as rectangle
// sets (rects within one set may overlap arbitrarily).
//
// This is the library's substitute for Boost.Polygon: a plane sweep along x
// with per-operand vertical coverage counts. Output rectangles are disjoint
// and maximally merged along x, in canonical RectYXLess order.
#pragma once

#include <span>
#include <vector>

#include "geometry/rect.hpp"

namespace ofl::geom {

enum class BoolOp {
  kUnion,      // covered by A or B
  kIntersect,  // covered by A and B
  kSubtract,   // covered by A and not B
  kXor,        // covered by exactly one of A, B
};

/// Coverage-table implementation behind the sweep. Both kernels run the
/// SAME algorithm over the same y-boundary -> (deltaA, deltaB) table and
/// produce bit-identical output; they differ only in the data structure
/// holding that table:
///  - kFlat: sorted flat vector with per-thread buffer reuse. Boundary
///    counts at any sweep stop are few (shapes crossing the scanline), so
///    binary search + memmove beats tree rebalancing and the linear walk
///    per stop is cache-friendly. Default everywhere.
///  - kTree: the original std::map table, one node allocation per live
///    boundary. Kept as the A/B baseline (bench_hotpath's brute config
///    reproduces the pre-optimization pipeline with it).
enum class SweepKernel {
  kFlat,
  kTree,
};

/// Full Boolean: returns the disjoint rectangle decomposition of op(A, B).
std::vector<Rect> booleanOp(std::span<const Rect> a, std::span<const Rect> b,
                            BoolOp op,
                            SweepKernel kernel = SweepKernel::kFlat);

/// booleanOp into a caller-owned buffer (cleared first), flat kernel only.
/// Emits the SAME disjoint decomposition as booleanOp but in sweep emission
/// order, skipping the canonical RectYXLess sort — for hot paths whose next
/// step imposes its own order anyway (e.g. candidate slicing re-sorts its
/// merged sources). Callers that need canonical order use booleanOp.
void booleanOpInto(std::span<const Rect> a, std::span<const Rect> b,
                   BoolOp op, std::vector<Rect>& out);

/// Area-only variant; avoids materializing output rectangles.
Area booleanArea(std::span<const Rect> a, std::span<const Rect> b, BoolOp op,
                 SweepKernel kernel = SweepKernel::kFlat);

/// Area of the union of one (possibly self-overlapping) rect set.
Area unionArea(std::span<const Rect> rects);

/// Area of intersection of two rect sets — the overlay primitive (paper
/// Section 2.1 counts inter-layer overlap area once, however many shapes
/// cover it).
inline Area intersectionArea(std::span<const Rect> a,
                             std::span<const Rect> b) {
  return booleanArea(a, b, BoolOp::kIntersect);
}

/// Total overlap of `rect` with a shape set, summed PAIRWISE — the Eqn. 8
/// overlay kernel shared by candidate scoring and its spatial-index
/// variant. Shapes that overlap each other contribute once EACH (the
/// coupling model: a fill facing two stacked neighbor shapes couples to
/// both), so on self-overlapping sets the sum exceeds the covered area.
Area overlapAreaSum(const Rect& rect, std::span<const Rect> shapes);

/// overlapAreaSum restricted to pairwise-DISJOINT shape sets, where the
/// pairwise sum equals the covered overlap area exactly.
///
/// PRECONDITION (debug-asserted): `shapes` must be pairwise disjoint,
/// e.g. a Region's rects or one layer's sliced candidates. A caller that
/// swaps Region::overlapArea for this kernel but passes self-overlapping
/// rects would silently double-count — that is the bug class the assert
/// exists to catch; release builds do not check.
Area overlapAreaDisjoint(const Rect& rect, std::span<const Rect> shapes);

}  // namespace ofl::geom
