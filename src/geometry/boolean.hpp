// Scanline Boolean operations on rectilinear regions given as rectangle
// sets (rects within one set may overlap arbitrarily).
//
// This is the library's substitute for Boost.Polygon: a plane sweep along x
// with per-operand vertical coverage counts. Output rectangles are disjoint
// and maximally merged along x, in canonical RectYXLess order.
#pragma once

#include <span>
#include <vector>

#include "geometry/rect.hpp"

namespace ofl::geom {

enum class BoolOp {
  kUnion,      // covered by A or B
  kIntersect,  // covered by A and B
  kSubtract,   // covered by A and not B
  kXor,        // covered by exactly one of A, B
};

/// Full Boolean: returns the disjoint rectangle decomposition of op(A, B).
std::vector<Rect> booleanOp(std::span<const Rect> a, std::span<const Rect> b,
                            BoolOp op);

/// Area-only variant; avoids materializing output rectangles.
Area booleanArea(std::span<const Rect> a, std::span<const Rect> b, BoolOp op);

/// Area of the union of one (possibly self-overlapping) rect set.
Area unionArea(std::span<const Rect> rects);

/// Area of intersection of two rect sets — the overlay primitive (paper
/// Section 2.1 counts inter-layer overlap area once, however many shapes
/// cover it).
inline Area intersectionArea(std::span<const Rect> a,
                             std::span<const Rect> b) {
  return booleanArea(a, b, BoolOp::kIntersect);
}

}  // namespace ofl::geom
