#include "geometry/rect.hpp"

#include <cmath>
#include <cstdio>

namespace ofl::geom {

double Rect::distance(const Rect& o) const {
  // Gap along each axis between the closed extents; negative gaps mean the
  // projections overlap, contributing zero to the distance.
  const double dx = std::max<Coord>({xl - o.xh, o.xl - xh, 0});
  const double dy = std::max<Coord>({yl - o.yh, o.yl - yh, 0});
  return std::sqrt(dx * dx + dy * dy);
}

std::string Rect::str() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "(%lld,%lld)-(%lld,%lld)",
                static_cast<long long>(xl), static_cast<long long>(yl),
                static_cast<long long>(xh), static_cast<long long>(yh));
  return buf;
}

}  // namespace ofl::geom
