// Static R-tree over rectangles, bulk-loaded with Sort-Tile-Recursive
// (STR) packing.
//
// Complements GridIndex: the grid wins on near-uniform fill shapes, the
// R-tree wins when shape sizes vary wildly (whole-die wires next to tiny
// fills) or when the die is mostly empty. Build once, query many — the
// fill flow's access pattern.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/rect.hpp"

namespace ofl::geom {

class RTree {
 public:
  /// Bulk-loads the tree; `rects[i]` keeps external id i.
  explicit RTree(const std::vector<Rect>& rects, int fanout = 8);

  /// Ids of all rects whose bounds overlap `query` (exact, not candidate:
  /// entry rects are stored and tested).
  std::vector<std::uint32_t> query(const Rect& query) const;

  /// Visits matching ids without allocating.
  template <typename Fn>
  void visit(const Rect& query, Fn&& fn) const {
    if (nodes_.empty()) return;
    visitNode(static_cast<int>(nodes_.size()) - 1, query, fn);
  }

  std::size_t size() const { return leafCount_; }
  int height() const { return height_; }

 private:
  struct Node {
    Rect bounds;
    // Leaf entries reference external ids; internal entries reference
    // child node indices.
    std::int32_t firstChild = -1;  // index into children_ slabs
    std::int32_t childCount = 0;
    bool leaf = false;
  };

  template <typename Fn>
  void visitNode(int nodeIdx, const Rect& query, Fn&& fn) const {
    const Node& node = nodes_[static_cast<std::size_t>(nodeIdx)];
    if (!node.bounds.overlaps(query)) return;
    for (std::int32_t k = 0; k < node.childCount; ++k) {
      const std::int32_t child =
          children_[static_cast<std::size_t>(node.firstChild + k)];
      if (node.leaf) {
        if (entryRects_[static_cast<std::size_t>(child)].overlaps(query)) {
          fn(static_cast<std::uint32_t>(child));
        }
      } else {
        visitNode(child, query, fn);
      }
    }
  }

  std::vector<Node> nodes_;        // root is the last node
  std::vector<std::int32_t> children_;
  std::vector<Rect> entryRects_;   // external rects by id
  std::size_t leafCount_ = 0;
  int height_ = 0;
};

}  // namespace ofl::geom
