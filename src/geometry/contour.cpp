#include "geometry/contour.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace ofl::geom {
namespace {

// Directed vertical boundary edge: up (+1) when the region lies to its
// right (a left boundary), down (-1) when to its left.
struct VEdge {
  Coord x;
  Coord ylo;
  Coord yhi;
  int dir;  // +1 up, -1 down

  Point start() const { return dir > 0 ? Point{x, ylo} : Point{x, yhi}; }
  Point end() const { return dir > 0 ? Point{x, yhi} : Point{x, ylo}; }
};

struct PointLess {
  bool operator()(const Point& a, const Point& b) const {
    if (a.x != b.x) return a.x < b.x;
    return a.y < b.y;
  }
};

// Net vertical boundary segments of the union: +1 runs where coverage
// starts (left boundaries), -1 where it ends. Abutting rect edges cancel.
std::vector<VEdge> boundaryVerticals(const Region& region) {
  std::map<Coord, std::map<Coord, int>> byX;  // x -> y -> delta of net sign
  for (const Rect& r : region.rects()) {
    auto& left = byX[r.xl];
    left[r.yl] += 1;
    left[r.yh] -= 1;
    auto& right = byX[r.xh];
    right[r.yl] -= 1;
    right[r.yh] += 1;
  }
  std::vector<VEdge> edges;
  for (const auto& [x, deltas] : byX) {
    int net = 0;
    Coord runStart = 0;
    int runSign = 0;
    for (const auto& [y, delta] : deltas) {
      const int next = net + delta;
      if (runSign == 0 && next != 0) {
        runStart = y;
        runSign = next;
      } else if (runSign != 0 && next != runSign) {
        edges.push_back({x, runStart, y, runSign});
        if (next != 0) {
          runStart = y;
          runSign = next;
        } else {
          runSign = 0;
        }
      }
      net = next;
    }
    assert(net == 0);
  }
  return edges;
}

}  // namespace

std::vector<Polygon> contours(const Region& region) {
  std::vector<Polygon> loops;
  const std::vector<VEdge> verticals = boundaryVerticals(region);
  if (verticals.empty()) return loops;

  // Horizontal boundary segments: along each horizontal line, vertical-edge
  // endpoints alternate between region entry and exit, so consecutive
  // sorted pairs are exactly the boundary runs.
  std::map<Coord, std::vector<Coord>> endpointsAtY;
  for (const VEdge& e : verticals) {
    endpointsAtY[e.ylo].push_back(e.x);
    endpointsAtY[e.yhi].push_back(e.x);
  }
  struct HSeg {
    Coord xl;
    Coord xr;
    Coord y;
    bool used = false;
  };
  std::vector<HSeg> horizontals;
  for (auto& [y, xs] : endpointsAtY) {
    std::sort(xs.begin(), xs.end());
    assert(xs.size() % 2 == 0);
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      horizontals.push_back({xs[i], xs[i + 1], y});
    }
  }

  // Lookup structures for the loop walk.
  std::multimap<Point, std::size_t, PointLess> vertByStart;
  for (std::size_t i = 0; i < verticals.size(); ++i) {
    vertByStart.insert({verticals[i].start(), i});
  }
  std::multimap<Point, std::size_t, PointLess> horizByEndpoint;
  for (std::size_t i = 0; i < horizontals.size(); ++i) {
    horizByEndpoint.insert({{horizontals[i].xl, horizontals[i].y}, i});
    horizByEndpoint.insert({{horizontals[i].xr, horizontals[i].y}, i});
  }

  std::vector<char> vertUsed(verticals.size(), 0);
  for (std::size_t seed = 0; seed < verticals.size(); ++seed) {
    if (vertUsed[seed]) continue;
    std::vector<Point> vertices;
    Point at = verticals[seed].start();
    std::size_t currentVert = seed;
    while (true) {
      // Traverse the vertical edge in its intrinsic direction.
      vertUsed[currentVert] = 1;
      vertices.push_back(at);
      at = verticals[currentVert].end();
      // Then the unused horizontal segment at this vertex.
      vertices.push_back(at);
      std::size_t h = horizontals.size();
      for (auto [it, last] = horizByEndpoint.equal_range(at); it != last;
           ++it) {
        if (!horizontals[it->second].used) {
          h = it->second;
          break;
        }
      }
      assert(h < horizontals.size());
      horizontals[h].used = true;
      at = (at.x == horizontals[h].xl) ? Point{horizontals[h].xr, horizontals[h].y}
                                       : Point{horizontals[h].xl, horizontals[h].y};
      if (at == verticals[seed].start()) break;  // loop closed
      // Next vertical edge starting here.
      std::size_t v = verticals.size();
      for (auto [it, last] = vertByStart.equal_range(at); it != last; ++it) {
        if (!vertUsed[it->second]) {
          v = it->second;
          break;
        }
      }
      assert(v < verticals.size());
      currentVert = v;
    }
    loops.emplace_back(std::move(vertices));
  }
  return loops;
}

}  // namespace ofl::geom
