#include "geometry/boolean.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "geometry/decompose.hpp"

namespace ofl::geom {
namespace {

struct Event {
  Coord x;
  Coord ylo;
  Coord yhi;
  int deltaA;
  int deltaB;
};

bool predicate(BoolOp op, bool inA, bool inB) {
  switch (op) {
    case BoolOp::kUnion: return inA || inB;
    case BoolOp::kIntersect: return inA && inB;
    case BoolOp::kSubtract: return inA && !inB;
    case BoolOp::kXor: return inA != inB;
  }
  return false;
}

void buildEventsInto(std::span<const Rect> a, std::span<const Rect> b,
                     std::vector<Event>& events) {
  events.clear();
  events.reserve(2 * (a.size() + b.size()));
  for (const Rect& r : a) {
    if (r.empty()) continue;
    events.push_back({r.xl, r.yl, r.yh, +1, 0});
    events.push_back({r.xh, r.yl, r.yh, -1, 0});
  }
  for (const Rect& r : b) {
    if (r.empty()) continue;
    events.push_back({r.xl, r.yl, r.yh, 0, +1});
    events.push_back({r.xh, r.yl, r.yh, 0, -1});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& l, const Event& r) { return l.x < r.x; });
}

// Vertical coverage state: y-boundary -> (deltaA, deltaB) count changes.
// Two interchangeable structures hold it (see SweepKernel in the header);
// both expose bump() and an ascending-y each() and therefore drive the
// shared sweep to bit-identical output.

// SweepKernel::kTree: the original std::map table.
class CoverTree {
 public:
  void bump(Coord y, int da, int db) {
    auto [it, inserted] = map_.try_emplace(y, 0, 0);
    it->second.first += da;
    it->second.second += db;
    if (it->second.first == 0 && it->second.second == 0) map_.erase(it);
  }
  template <typename Fn>
  void each(Fn&& fn) const {
    for (const auto& [y, delta] : map_) fn(y, delta.first, delta.second);
  }

 private:
  std::map<Coord, std::pair<int, int>> map_;
};

// SweepKernel::kFlat: the same table in a sorted flat vector. Live
// boundaries at a sweep stop are only the shapes crossing the scanline,
// so the memmove behind insert()/erase() stays small and each() is a
// contiguous walk.
class CoverFlat {
 public:
  void bump(Coord y, int da, int db) {
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), y,
        [](const Entry& e, Coord key) { return e.y < key; });
    if (it != entries_.end() && it->y == y) {
      it->da += da;
      it->db += db;
      if (it->da == 0 && it->db == 0) entries_.erase(it);
    } else {
      entries_.insert(it, {y, da, db});
    }
  }
  template <typename Fn>
  void each(Fn&& fn) const {
    for (const Entry& e : entries_) fn(e.y, e.da, e.db);
  }
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    Coord y;
    int da;
    int db;
  };
  std::vector<Entry> entries_;
};

// Disjoint, sorted y-intervals where the predicate currently holds. Pred
// is a callable (inA, inB) -> bool: the tree kernel passes the runtime
// predicate() switch, the flat kernel an op-specific lambda the compiler
// inlines into the per-boundary walk.
template <typename Cover, typename Pred>
void coveredIntervals(const Cover& cover, Pred&& pred,
                      std::vector<Interval>& out) {
  out.clear();
  int countA = 0;
  int countB = 0;
  bool active = false;
  Coord start = 0;
  cover.each([&](Coord y, int da, int db) {
    countA += da;
    countB += db;
    const bool nowActive = pred(countA > 0, countB > 0);
    if (nowActive && !active) {
      start = y;
      active = true;
    } else if (!nowActive && active) {
      if (out.empty() || out.back().hi != start) {
        out.push_back({start, y});
      } else {
        out.back().hi = y;  // merge abutting runs
      }
      active = false;
    }
  });
  // Counts return to zero at the topmost boundary, so `active` is false here.
}

// Open runs: interval -> x where it started. Kept sorted by interval.
using OpenRuns = std::vector<std::pair<Interval, Coord>>;

// Reused buffers for the kFlat kernel; one set per thread. The kTree
// kernel keeps its original per-call locals so the baseline's performance
// profile stays untouched.
struct FlatScratch {
  std::vector<Event> events;
  CoverFlat cover;
  OpenRuns open;
  OpenRuns nextOpen;
};

FlatScratch& flatScratch() {
  static thread_local FlatScratch scratch;
  return scratch;
}

// Sweep body shared by both kernels. Emit(xl, xh, interval) is called once
// per maximal x-run of each covered y-interval.
template <typename Cover, typename Pred, typename EmitFn>
void sweepLoop(const std::vector<Event>& events, Pred&& pred, Cover& cover,
               OpenRuns& open, std::vector<Interval>& covered,
               OpenRuns& nextOpen, EmitFn&& emit) {
  std::size_t i = 0;
  while (i < events.size()) {
    const Coord x = events[i].x;
    while (i < events.size() && events[i].x == x) {
      const Event& e = events[i];
      cover.bump(e.ylo, e.deltaA, e.deltaB);
      cover.bump(e.yhi, -e.deltaA, -e.deltaB);
      ++i;
    }
    coveredIntervals(cover, pred, covered);

    // Diff `open` against `covered`: an interval present in both continues
    // (keeping its original start x); one only in `open` is emitted as a
    // finished rect; one only in `covered` starts a new run at x. Both
    // lists are sorted by (lo, hi) and internally disjoint, so a
    // lexicographic two-pointer walk visits each exactly once. Any reshaped
    // run (split/grow/shrink) simply closes and reopens, which keeps the
    // output disjoint.
    auto ivLess = [](const Interval& l, const Interval& r) {
      return l.lo != r.lo ? l.lo < r.lo : l.hi < r.hi;
    };
    nextOpen.clear();
    std::size_t oi = 0;
    std::size_t ci = 0;
    while (oi < open.size() && ci < covered.size()) {
      if (open[oi].first == covered[ci]) {
        nextOpen.push_back(open[oi]);
        ++oi;
        ++ci;
      } else if (ivLess(open[oi].first, covered[ci])) {
        emit(open[oi].second, x, open[oi].first);
        ++oi;
      } else {
        nextOpen.push_back({covered[ci], x});
        ++ci;
      }
    }
    for (; oi < open.size(); ++oi) emit(open[oi].second, x, open[oi].first);
    for (; ci < covered.size(); ++ci) nextOpen.push_back({covered[ci], x});
    open.swap(nextOpen);
  }
  // All events processed; counts are zero, so `covered` ended empty and
  // every run was closed above.
}

// kFlat-only sweep body: same algorithm as sweepLoop, but the covered
// intervals stream straight into the open-run diff instead of being
// materialized first. Each finished covered interval is handled in
// ascending order, which is exactly the order the two-pointer diff in
// sweepLoop consumes them, so emits and run starts happen in the same
// sequence and the output is bit-identical.
template <typename Pred, typename EmitFn>
void sweepLoopFused(const std::vector<Event>& events, Pred&& pred,
                    CoverFlat& cover, OpenRuns& open, OpenRuns& nextOpen,
                    EmitFn&& emit) {
  auto ivLess = [](const Interval& l, const Interval& r) {
    return l.lo != r.lo ? l.lo < r.lo : l.hi < r.hi;
  };
  std::size_t i = 0;
  while (i < events.size()) {
    const Coord x = events[i].x;
    while (i < events.size() && events[i].x == x) {
      const Event& e = events[i];
      cover.bump(e.ylo, e.deltaA, e.deltaB);
      cover.bump(e.yhi, -e.deltaA, -e.deltaB);
      ++i;
    }
    nextOpen.clear();
    std::size_t oi = 0;
    int countA = 0;
    int countB = 0;
    bool active = false;
    Coord start = 0;
    cover.each([&](Coord y, int da, int db) {
      countA += da;
      countB += db;
      const bool nowActive = pred(countA > 0, countB > 0);
      if (nowActive && !active) {
        start = y;
        active = true;
      } else if (!nowActive && active) {
        const Interval cv{start, y};
        while (oi < open.size() && ivLess(open[oi].first, cv)) {
          emit(open[oi].second, x, open[oi].first);
          ++oi;
        }
        if (oi < open.size() && open[oi].first == cv) {
          nextOpen.push_back(open[oi]);
          ++oi;
        } else {
          nextOpen.push_back({cv, x});
        }
        active = false;
      }
    });
    for (; oi < open.size(); ++oi) emit(open[oi].second, x, open[oi].first);
    open.swap(nextOpen);
  }
}

template <typename EmitFn>
void sweep(std::span<const Rect> a, std::span<const Rect> b, BoolOp op,
           SweepKernel kernel, EmitFn&& emit) {
  if (kernel == SweepKernel::kTree) {
    std::vector<Event> events;
    buildEventsInto(a, b, events);
    if (events.empty()) return;
    CoverTree cover;
    OpenRuns open;
    std::vector<Interval> covered;
    OpenRuns nextOpen;
    sweepLoop(events,
              [op](bool inA, bool inB) { return predicate(op, inA, inB); },
              cover, open, covered, nextOpen, emit);
    return;
  }
  FlatScratch& s = flatScratch();
  buildEventsInto(a, b, s.events);
  if (s.events.empty()) return;
  s.cover.clear();
  s.open.clear();
  auto run = [&](auto pred) {
    sweepLoopFused(s.events, pred, s.cover, s.open, s.nextOpen, emit);
  };
  switch (op) {
    case BoolOp::kUnion: run([](bool inA, bool inB) { return inA || inB; });
      break;
    case BoolOp::kIntersect:
      run([](bool inA, bool inB) { return inA && inB; });
      break;
    case BoolOp::kSubtract:
      run([](bool inA, bool inB) { return inA && !inB; });
      break;
    case BoolOp::kXor: run([](bool inA, bool inB) { return inA != inB; });
      break;
  }
}

}  // namespace

std::vector<Rect> booleanOp(std::span<const Rect> a, std::span<const Rect> b,
                            BoolOp op, SweepKernel kernel) {
  std::vector<Rect> out;
  sweep(a, b, op, kernel, [&out](Coord xl, Coord xh, const Interval& iv) {
    if (xl < xh && !iv.empty()) out.push_back({xl, iv.lo, xh, iv.hi});
  });
  std::sort(out.begin(), out.end(), RectYXLess{});
  return out;
}

void booleanOpInto(std::span<const Rect> a, std::span<const Rect> b, BoolOp op,
                   std::vector<Rect>& out) {
  out.clear();
  sweep(a, b, op, SweepKernel::kFlat,
        [&out](Coord xl, Coord xh, const Interval& iv) {
          if (xl < xh && !iv.empty()) out.push_back({xl, iv.lo, xh, iv.hi});
        });
}

Area booleanArea(std::span<const Rect> a, std::span<const Rect> b,
                 BoolOp op, SweepKernel kernel) {
  Area total = 0;
  sweep(a, b, op, kernel, [&total](Coord xl, Coord xh, const Interval& iv) {
    total += static_cast<Area>(xh - xl) * iv.length();
  });
  return total;
}

Area unionArea(std::span<const Rect> rects) {
  return booleanArea(rects, {}, BoolOp::kUnion);
}

Area overlapAreaSum(const Rect& rect, std::span<const Rect> shapes) {
  Area total = 0;
  for (const Rect& s : shapes) total += rect.overlapArea(s);
  return total;
}

Area overlapAreaDisjoint(const Rect& rect, std::span<const Rect> shapes) {
  const Area total = overlapAreaSum(rect, shapes);
#ifndef NDEBUG
  // Disjointness precondition: the pairwise sum must equal the exact
  // covered overlap (coverage-counted once). O(n log n) sweep, debug only.
  assert(total == intersectionArea({&rect, 1}, shapes) &&
         "overlapAreaDisjoint requires pairwise-disjoint shapes");
#endif
  return total;
}

}  // namespace ofl::geom
