#include "geometry/boolean.hpp"

#include <algorithm>
#include <map>

#include "geometry/decompose.hpp"

namespace ofl::geom {
namespace {

struct Event {
  Coord x;
  Coord ylo;
  Coord yhi;
  int deltaA;
  int deltaB;
};

bool predicate(BoolOp op, bool inA, bool inB) {
  switch (op) {
    case BoolOp::kUnion: return inA || inB;
    case BoolOp::kIntersect: return inA && inB;
    case BoolOp::kSubtract: return inA && !inB;
    case BoolOp::kXor: return inA != inB;
  }
  return false;
}

std::vector<Event> buildEvents(std::span<const Rect> a,
                               std::span<const Rect> b) {
  std::vector<Event> events;
  events.reserve(2 * (a.size() + b.size()));
  for (const Rect& r : a) {
    if (r.empty()) continue;
    events.push_back({r.xl, r.yl, r.yh, +1, 0});
    events.push_back({r.xh, r.yl, r.yh, -1, 0});
  }
  for (const Rect& r : b) {
    if (r.empty()) continue;
    events.push_back({r.xl, r.yl, r.yh, 0, +1});
    events.push_back({r.xh, r.yl, r.yh, 0, -1});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& l, const Event& r) { return l.x < r.x; });
  return events;
}

// Vertical coverage state: y-boundary -> (deltaA, deltaB) count changes.
using CoverMap = std::map<Coord, std::pair<int, int>>;

void applyEvent(CoverMap& cover, const Event& e) {
  auto bump = [&cover](Coord y, int da, int db) {
    auto [it, inserted] = cover.try_emplace(y, 0, 0);
    it->second.first += da;
    it->second.second += db;
    if (it->second.first == 0 && it->second.second == 0) cover.erase(it);
  };
  bump(e.ylo, e.deltaA, e.deltaB);
  bump(e.yhi, -e.deltaA, -e.deltaB);
}

// Disjoint, sorted y-intervals where the predicate currently holds.
void coveredIntervals(const CoverMap& cover, BoolOp op,
                      std::vector<Interval>& out) {
  out.clear();
  int countA = 0;
  int countB = 0;
  bool active = false;
  Coord start = 0;
  for (const auto& [y, delta] : cover) {
    countA += delta.first;
    countB += delta.second;
    const bool nowActive = predicate(op, countA > 0, countB > 0);
    if (nowActive && !active) {
      start = y;
      active = true;
    } else if (!nowActive && active) {
      if (out.empty() || out.back().hi != start) {
        out.push_back({start, y});
      } else {
        out.back().hi = y;  // merge abutting runs
      }
      active = false;
    }
  }
  // Counts return to zero at the topmost boundary, so `active` is false here.
}

// Generic sweep. Emit(xl, xh, interval) is called once per maximal x-run of
// each covered y-interval.
template <typename EmitFn>
void sweep(std::span<const Rect> a, std::span<const Rect> b, BoolOp op,
           EmitFn&& emit) {
  const std::vector<Event> events = buildEvents(a, b);
  if (events.empty()) return;

  CoverMap cover;
  // Open runs: interval -> x where it started. Kept sorted by interval.
  std::vector<std::pair<Interval, Coord>> open;
  std::vector<Interval> covered;
  std::vector<std::pair<Interval, Coord>> nextOpen;

  std::size_t i = 0;
  while (i < events.size()) {
    const Coord x = events[i].x;
    while (i < events.size() && events[i].x == x) {
      applyEvent(cover, events[i]);
      ++i;
    }
    coveredIntervals(cover, op, covered);

    // Diff `open` against `covered`: an interval present in both continues
    // (keeping its original start x); one only in `open` is emitted as a
    // finished rect; one only in `covered` starts a new run at x. Both
    // lists are sorted by (lo, hi) and internally disjoint, so a
    // lexicographic two-pointer walk visits each exactly once. Any reshaped
    // run (split/grow/shrink) simply closes and reopens, which keeps the
    // output disjoint.
    auto ivLess = [](const Interval& l, const Interval& r) {
      return l.lo != r.lo ? l.lo < r.lo : l.hi < r.hi;
    };
    nextOpen.clear();
    std::size_t oi = 0;
    std::size_t ci = 0;
    while (oi < open.size() && ci < covered.size()) {
      if (open[oi].first == covered[ci]) {
        nextOpen.push_back(open[oi]);
        ++oi;
        ++ci;
      } else if (ivLess(open[oi].first, covered[ci])) {
        emit(open[oi].second, x, open[oi].first);
        ++oi;
      } else {
        nextOpen.push_back({covered[ci], x});
        ++ci;
      }
    }
    for (; oi < open.size(); ++oi) emit(open[oi].second, x, open[oi].first);
    for (; ci < covered.size(); ++ci) nextOpen.push_back({covered[ci], x});
    open.swap(nextOpen);
  }
  // All events processed; counts are zero, so `covered` ended empty and
  // every run was closed above.
}

}  // namespace

std::vector<Rect> booleanOp(std::span<const Rect> a, std::span<const Rect> b,
                            BoolOp op) {
  std::vector<Rect> out;
  sweep(a, b, op, [&out](Coord xl, Coord xh, const Interval& iv) {
    if (xl < xh && !iv.empty()) out.push_back({xl, iv.lo, xh, iv.hi});
  });
  std::sort(out.begin(), out.end(), RectYXLess{});
  return out;
}

Area booleanArea(std::span<const Rect> a, std::span<const Rect> b,
                 BoolOp op) {
  Area total = 0;
  sweep(a, b, op, [&total](Coord xl, Coord xh, const Interval& iv) {
    total += static_cast<Area>(xh - xl) * iv.length();
  });
  return total;
}

Area unionArea(std::span<const Rect> rects) {
  return booleanArea(rects, {}, BoolOp::kUnion);
}

}  // namespace ofl::geom
