#include "geometry/grid_index.hpp"

#include <algorithm>
#include <cassert>

namespace ofl::geom {

GridIndex::GridIndex(const Rect& extent, Coord cellSize) {
  reset(extent, cellSize);
}

void GridIndex::reset(const Rect& extent, Coord cellSize) {
  extent_ = extent;
  cellSize_ = std::max<Coord>(cellSize, 1);
  nx_ = static_cast<int>((extent_.width() + cellSize_ - 1) / cellSize_);
  ny_ = static_cast<int>((extent_.height() + cellSize_ - 1) / cellSize_);
  nx_ = std::max(nx_, 1);
  ny_ = std::max(ny_, 1);
  const auto needed = static_cast<std::size_t>(nx_) * ny_;
  // clear() keeps each bucket's capacity; only grow the bucket table.
  for (std::size_t c = 0; c < std::min(needed, cells_.size()); ++c) {
    cells_[c].clear();
  }
  cells_.resize(needed);
}

void GridIndex::cellRange(const Rect& r, int& cx0, int& cy0, int& cx1,
                          int& cy1) const {
  auto clampCell = [](Coord v, int n) {
    return static_cast<int>(std::clamp<Coord>(v, 0, n - 1));
  };
  cx0 = clampCell((r.xl - extent_.xl) / cellSize_, nx_);
  cy0 = clampCell((r.yl - extent_.yl) / cellSize_, ny_);
  // Half-open rect: xh-1 is the last covered column.
  cx1 = clampCell((r.xh - 1 - extent_.xl) / cellSize_, nx_);
  cy1 = clampCell((r.yh - 1 - extent_.yl) / cellSize_, ny_);
  if (cx1 < cx0) cx1 = cx0;
  if (cy1 < cy0) cy1 = cy0;
}

void GridIndex::insert(std::uint32_t id, const Rect& rect) {
  assert(!rect.empty());
  int cx0, cy0, cx1, cy1;
  cellRange(rect, cx0, cy0, cx1, cy1);
  for (int cy = cy0; cy <= cy1; ++cy) {
    for (int cx = cx0; cx <= cx1; ++cx) {
      cells_[cellOf(cx, cy)].push_back(id);
    }
  }
}

std::vector<std::uint32_t> GridIndex::query(const Rect& query) const {
  std::vector<std::uint32_t> out;
  visit(query, [&out](std::uint32_t id) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ofl::geom
