#include "geometry/polygon.hpp"

#include <cstdlib>

namespace ofl::geom {

Polygon Polygon::fromRect(const Rect& r) {
  return Polygon({{r.xl, r.yl}, {r.xh, r.yl}, {r.xh, r.yh}, {r.xl, r.yh}});
}

bool Polygon::isValidRectilinear() const {
  const std::size_t n = vertices_.size();
  if (n < 4 || n % 2 != 0) return false;
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    const bool horizontal = (a.y == b.y && a.x != b.x);
    const bool vertical = (a.x == b.x && a.y != b.y);
    if (!horizontal && !vertical) return false;
    // Consecutive edges must alternate direction; two collinear edges in a
    // row indicate a redundant vertex, which we reject to keep loops
    // canonical.
    const Point& c = vertices_[(i + 2) % n];
    const bool nextHorizontal = (b.y == c.y && b.x != c.x);
    if (horizontal == nextHorizontal) return false;
  }
  return true;
}

Area Polygon::area() const {
  const std::size_t n = vertices_.size();
  if (n < 3) return 0;
  // Shoelace; for rectilinear loops each term is exact in 64-bit given the
  // < 2^31 coordinate bound documented in rect.hpp.
  Area twice = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    twice += static_cast<Area>(a.x) * b.y - static_cast<Area>(b.x) * a.y;
  }
  return std::llabs(twice) / 2;
}

Rect Polygon::bbox() const {
  if (vertices_.empty()) return {};
  Rect r{vertices_[0].x, vertices_[0].y, vertices_[0].x, vertices_[0].y};
  for (const Point& p : vertices_) {
    r.xl = std::min(r.xl, p.x);
    r.yl = std::min(r.yl, p.y);
    r.xh = std::max(r.xh, p.x);
    r.yh = std::max(r.yh, p.y);
  }
  return r;
}

}  // namespace ofl::geom
