// Contour extraction: the inverse of decompose().
//
// Converts a region (disjoint rect set) into its boundary loops — outer
// contours counter-clockwise, hole contours clockwise. Together with
// decomposeEvenOdd() this closes the polygon<->rectangle round trip: GDS
// polygons in, rect processing, compact polygons out.
#pragma once

#include <vector>

#include "geometry/polygon.hpp"
#include "geometry/region.hpp"

namespace ofl::geom {

/// Boundary loops of `region`. Loops are rectilinear and simple; a point
/// is inside the region iff it is enclosed by an odd number of loops
/// (even-odd rule), so decomposeEvenOdd(contours(r)) == r.
std::vector<Polygon> contours(const Region& region);

}  // namespace ofl::geom
