// Uniform-grid spatial index over rectangles.
//
// Supports the two hot queries of the fill flow: bucketing shapes into
// dissection windows and neighbor lookup for spacing constraints. A uniform
// grid beats an R-tree here because fill shapes are small relative to the
// die and near-uniformly distributed by construction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geometry/rect.hpp"

namespace ofl::geom {

/// Cell-pitch heuristic for window-local indexes: pitch near `targetSize`
/// (the typical query extent, e.g. the max fill size) but no finer than
/// 1/64 of the window's short side, so the cell table stays small for
/// windows much larger than the queries. Shared by the candidate
/// generator's overlay index and the sizer's marginal/spacing indexes.
inline Coord windowCellSize(const Rect& window, Coord targetSize) {
  const Coord minDim =
      std::max<Coord>(std::min(window.width(), window.height()), 1);
  return std::max<Coord>(std::max(targetSize, minDim / 64), 1);
}

class GridIndex {
 public:
  /// Empty index; unusable until reset(). For scratch slots that are
  /// re-targeted window by window without reallocation.
  GridIndex() = default;

  /// `extent` is the indexed area; `cellSize` the square grid pitch.
  GridIndex(const Rect& extent, Coord cellSize);

  /// Re-targets the index to a new extent/pitch and drops all entries,
  /// reusing the cell-bucket allocations of earlier geometries. The
  /// fill pipeline calls this once per window on a per-thread scratch
  /// index instead of constructing a fresh one.
  void reset(const Rect& extent, Coord cellSize);

  /// Inserts a rect with a caller-chosen id; rects outside the extent are
  /// clamped to the border cells so they are still discoverable.
  void insert(std::uint32_t id, const Rect& rect);

  /// Ids of all inserted rects whose cells intersect `query`. The result
  /// is deduplicated but the caller must still verify actual overlap
  /// against its own rect storage (the index stores ids only).
  std::vector<std::uint32_t> query(const Rect& query) const;

  /// Visits candidate ids without allocation; `fn(id)` may see duplicates
  /// filtered by an internal stamp, i.e. each id is visited once.
  template <typename Fn>
  void visit(const Rect& query, Fn&& fn) const {
    ++stamp_;
    int cx0, cy0, cx1, cy1;
    cellRange(query, cx0, cy0, cx1, cy1);
    for (int cy = cy0; cy <= cy1; ++cy) {
      for (int cx = cx0; cx <= cx1; ++cx) {
        for (std::uint32_t id : cells_[cellOf(cx, cy)]) {
          if (seen_.size() <= id) seen_.resize(id + 1, 0);
          if (seen_[id] == stamp_) continue;
          seen_[id] = stamp_;
          fn(id);
        }
      }
    }
  }

  std::size_t cellCount() const { return cells_.size(); }

 private:
  std::size_t cellOf(int cx, int cy) const {
    return static_cast<std::size_t>(cy) * nx_ + cx;
  }
  void cellRange(const Rect& r, int& cx0, int& cy0, int& cx1, int& cy1) const;

  Rect extent_;
  Coord cellSize_ = 1;
  int nx_ = 0;
  int ny_ = 0;
  std::vector<std::vector<std::uint32_t>> cells_;
  mutable std::vector<std::uint64_t> seen_;
  mutable std::uint64_t stamp_ = 0;
};

}  // namespace ofl::geom
