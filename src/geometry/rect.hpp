// Integer geometry primitives.
//
// All coordinates are 64-bit integers in database units (DBU), matching
// GDSII semantics. Rectangles use HALF-OPEN semantics: a Rect occupies
// [xl, xh) x [yl, yh). Two rects that merely share an edge therefore do
// not overlap, and areas of a disjoint decomposition add up exactly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

namespace ofl::geom {

using Coord = std::int64_t;
/// Area type: products of two Coords. Layout extents in this library are
/// kept below 2^31 DBU so Coord*Coord never overflows Area.
using Area = std::int64_t;

struct Point {
  Coord x = 0;
  Coord y = 0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Closed-open 1-D interval [lo, hi).
struct Interval {
  Coord lo = 0;
  Coord hi = 0;

  Coord length() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
  bool contains(Coord v) const { return lo <= v && v < hi; }
  bool overlaps(const Interval& o) const { return lo < o.hi && o.lo < hi; }

  Interval intersection(const Interval& o) const {
    return {std::max(lo, o.lo), std::min(hi, o.hi)};
  }

  friend bool operator==(const Interval&, const Interval&) = default;
};

struct Rect {
  Coord xl = 0;
  Coord yl = 0;
  Coord xh = 0;
  Coord yh = 0;

  Rect() = default;
  Rect(Coord xl_, Coord yl_, Coord xh_, Coord yh_)
      : xl(xl_), yl(yl_), xh(xh_), yh(yh_) {}

  Coord width() const { return xh - xl; }
  Coord height() const { return yh - yl; }
  Area area() const { return static_cast<Area>(width()) * height(); }
  bool empty() const { return xh <= xl || yh <= yl; }

  Interval xInterval() const { return {xl, xh}; }
  Interval yInterval() const { return {yl, yh}; }

  bool contains(const Point& p) const {
    return xl <= p.x && p.x < xh && yl <= p.y && p.y < yh;
  }
  /// True when `o` lies entirely inside this rect (half-open containment).
  bool contains(const Rect& o) const {
    return xl <= o.xl && o.xh <= xh && yl <= o.yl && o.yh <= yh;
  }
  bool overlaps(const Rect& o) const {
    return xl < o.xh && o.xl < xh && yl < o.yh && o.yl < yh;
  }
  /// True when the rects overlap or share boundary (abutting counts).
  bool touches(const Rect& o) const {
    return xl <= o.xh && o.xl <= xh && yl <= o.yh && o.yl <= yh;
  }

  /// Intersection; may be empty() when the rects do not overlap.
  Rect intersection(const Rect& o) const {
    return {std::max(xl, o.xl), std::max(yl, o.yl), std::min(xh, o.xh),
            std::min(yh, o.yh)};
  }

  /// Overlap area with another rect (0 when disjoint).
  Area overlapArea(const Rect& o) const {
    const Rect r = intersection(o);
    return r.empty() ? 0 : r.area();
  }

  /// Rect grown by `d` on every side (shrunk when d < 0; may become empty).
  Rect expanded(Coord d) const { return {xl - d, yl - d, xh + d, yh + d}; }

  /// Smallest rect covering both (treats empty() operands as identity when
  /// combined via bboxUnion below; raw union here assumes both non-empty).
  Rect bboxUnion(const Rect& o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    return {std::min(xl, o.xl), std::min(yl, o.yl), std::max(xh, o.xh),
            std::max(yh, o.yh)};
  }

  /// Euclidean distance between closures of two rects; 0 when touching.
  double distance(const Rect& o) const;

  std::string str() const;

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Lexicographic order (yl, xl, yh, xh); canonical order for deterministic
/// output of region operations.
struct RectYXLess {
  bool operator()(const Rect& a, const Rect& b) const {
    if (a.yl != b.yl) return a.yl < b.yl;
    if (a.xl != b.xl) return a.xl < b.xl;
    if (a.yh != b.yh) return a.yh < b.yh;
    return a.xh < b.xh;
  }
};

}  // namespace ofl::geom
