#include "geometry/decompose.hpp"

#include <algorithm>
#include <cassert>

namespace ofl::geom {
namespace {

struct VEdge {
  Coord x;
  Coord ylo;
  Coord yhi;
};

// Collects the vertical edges of each loop.
std::vector<VEdge> verticalEdges(const std::vector<Polygon>& loops) {
  std::vector<VEdge> edges;
  for (const Polygon& poly : loops) {
    const auto& v = poly.vertices();
    const std::size_t n = v.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Point& a = v[i];
      const Point& b = v[(i + 1) % n];
      if (a.x == b.x && a.y != b.y) {
        edges.push_back({a.x, std::min(a.y, b.y), std::max(a.y, b.y)});
      }
    }
  }
  return edges;
}

// Slab decomposition under even-odd parity across the given vertical edges.
std::vector<Rect> slabDecompose(const std::vector<VEdge>& edges) {
  std::vector<Rect> out;
  if (edges.empty()) return out;

  std::vector<Coord> ys;
  ys.reserve(edges.size() * 2);
  for (const VEdge& e : edges) {
    ys.push_back(e.ylo);
    ys.push_back(e.yhi);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  std::vector<Coord> xs;  // reused per slab
  for (std::size_t s = 0; s + 1 < ys.size(); ++s) {
    const Coord ylo = ys[s];
    const Coord yhi = ys[s + 1];
    xs.clear();
    for (const VEdge& e : edges) {
      if (e.ylo <= ylo && yhi <= e.yhi) xs.push_back(e.x);
    }
    std::sort(xs.begin(), xs.end());
    // Even-odd: consecutive pairs of crossings bound interior runs. A
    // repeated x (two coincident edges) cancels out, which the pairing
    // handles naturally since the pair spans zero width.
    assert(xs.size() % 2 == 0);
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      if (xs[i] < xs[i + 1]) out.push_back({xs[i], ylo, xs[i + 1], yhi});
    }
  }
  return mergeHorizontal(std::move(out));
}

}  // namespace

std::vector<Rect> decompose(const Polygon& polygon) {
  return decomposeEvenOdd({polygon});
}

std::vector<Rect> decomposeEvenOdd(const std::vector<Polygon>& loops) {
  return slabDecompose(verticalEdges(loops));
}

std::vector<Rect> mergeHorizontal(std::vector<Rect> rects) {
  if (rects.size() < 2) return rects;
  std::sort(rects.begin(), rects.end(), [](const Rect& a, const Rect& b) {
    if (a.yl != b.yl) return a.yl < b.yl;
    if (a.yh != b.yh) return a.yh < b.yh;
    return a.xl < b.xl;
  });
  std::vector<Rect> out;
  out.push_back(rects[0]);
  for (std::size_t i = 1; i < rects.size(); ++i) {
    Rect& last = out.back();
    const Rect& r = rects[i];
    if (r.yl == last.yl && r.yh == last.yh && r.xl == last.xh) {
      last.xh = r.xh;
    } else {
      out.push_back(r);
    }
  }
  return out;
}

std::vector<Rect> mergeVertical(std::vector<Rect> rects) {
  mergeVerticalInPlace(rects);
  return rects;
}

void mergeVerticalInPlace(std::vector<Rect>& rects) {
  if (rects.size() < 2) return;
  std::sort(rects.begin(), rects.end(), [](const Rect& a, const Rect& b) {
    if (a.xl != b.xl) return a.xl < b.xl;
    if (a.xh != b.xh) return a.xh < b.xh;
    return a.yl < b.yl;
  });
  // Compact in place: the write cursor never passes the read cursor.
  std::size_t w = 0;
  for (std::size_t i = 1; i < rects.size(); ++i) {
    Rect& last = rects[w];
    const Rect& r = rects[i];
    if (r.xl == last.xl && r.xh == last.xh && r.yl == last.yh) {
      last.yh = r.yh;
    } else {
      rects[++w] = r;
    }
  }
  rects.resize(w + 1);
}

}  // namespace ofl::geom
