#include "geometry/region.hpp"

#include <algorithm>

namespace ofl::geom {

Region::Region(std::span<const Rect> rects, SweepKernel kernel)
    : rects_(booleanOp(rects, {}, BoolOp::kUnion, kernel)) {}

Region::Region(const Rect& rect) {
  if (!rect.empty()) rects_.push_back(rect);
}

Region Region::fromDisjoint(std::vector<Rect> rects) {
  Region r;
  r.rects_ = std::move(rects);
  std::sort(r.rects_.begin(), r.rects_.end(), RectYXLess{});
  return r;
}

Area Region::area() const {
  Area total = 0;
  for (const Rect& r : rects_) total += r.area();
  return total;
}

Rect Region::bbox() const {
  Rect box;
  for (const Rect& r : rects_) box = box.bboxUnion(r);
  return box;
}

Region Region::unite(const Region& other, SweepKernel kernel) const {
  return fromDisjoint(booleanOp(rects_, other.rects_, BoolOp::kUnion, kernel));
}

Region Region::intersect(const Region& other, SweepKernel kernel) const {
  return fromDisjoint(
      booleanOp(rects_, other.rects_, BoolOp::kIntersect, kernel));
}

Region Region::subtract(const Region& other, SweepKernel kernel) const {
  return fromDisjoint(
      booleanOp(rects_, other.rects_, BoolOp::kSubtract, kernel));
}

Region Region::clipped(const Rect& window) const {
  std::vector<Rect> out;
  for (const Rect& r : rects_) {
    const Rect c = r.intersection(window);
    if (!c.empty()) out.push_back(c);
  }
  return fromDisjoint(std::move(out));
}

Region Region::shrunk(Coord d) const {
  if (d <= 0) return *this;
  // Erosion of a rectilinear region = complement of the dilation of the
  // complement. Implemented within an inflated bbox: grow the complement
  // rects by d and subtract from the original region.
  if (rects_.empty()) return {};
  const Rect box = bbox().expanded(d + 1);
  std::vector<Rect> boxRects{box};
  std::vector<Rect> complement = booleanOp(boxRects, rects_, BoolOp::kSubtract);
  for (Rect& r : complement) r = r.expanded(d);
  return fromDisjoint(booleanOp(rects_, complement, BoolOp::kSubtract));
}

}  // namespace ofl::geom
