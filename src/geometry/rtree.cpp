#include "geometry/rtree.hpp"

#include <algorithm>
#include <cmath>

namespace ofl::geom {

RTree::RTree(const std::vector<Rect>& rects, int fanout)
    : entryRects_(rects), leafCount_(rects.size()) {
  if (rects.empty()) return;
  fanout = std::max(fanout, 2);

  // Level 0: STR-pack the entry ids into leaves.
  // currentIds are the "items" of the level being packed (entry ids for
  // leaves, node indices above); currentBounds their bounding rects.
  std::vector<std::int32_t> currentIds(rects.size());
  std::vector<Rect> currentBounds(rects.size());
  for (std::size_t i = 0; i < rects.size(); ++i) {
    currentIds[i] = static_cast<std::int32_t>(i);
    currentBounds[i] = rects[i];
  }
  bool leafLevel = true;

  while (true) {
    const std::size_t n = currentIds.size();
    const auto nodeCount =
        static_cast<std::size_t>((n + fanout - 1) / fanout);
    // STR: sort by center x, cut into vertical slices of ~sqrt(nodeCount)
    // runs, sort each slice by center y, chop into nodes.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    auto centerX = [&currentBounds](std::size_t i) {
      return currentBounds[i].xl + currentBounds[i].xh;
    };
    auto centerY = [&currentBounds](std::size_t i) {
      return currentBounds[i].yl + currentBounds[i].yh;
    };
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return centerX(a) != centerX(b) ? centerX(a) < centerX(b)
                                                : centerY(a) < centerY(b);
              });
    const auto sliceCount = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(nodeCount))));
    const std::size_t sliceSize =
        (n + sliceCount - 1) / std::max<std::size_t>(sliceCount, 1);
    for (std::size_t s = 0; s * sliceSize < n; ++s) {
      const std::size_t lo = s * sliceSize;
      const std::size_t hi = std::min(lo + sliceSize, n);
      std::sort(order.begin() + static_cast<std::ptrdiff_t>(lo),
                order.begin() + static_cast<std::ptrdiff_t>(hi),
                [&](std::size_t a, std::size_t b) {
                  return centerY(a) != centerY(b) ? centerY(a) < centerY(b)
                                                  : centerX(a) < centerX(b);
                });
    }

    // Emit nodes over the packed order.
    std::vector<std::int32_t> nextIds;
    std::vector<Rect> nextBounds;
    for (std::size_t lo = 0; lo < n; lo += static_cast<std::size_t>(fanout)) {
      const std::size_t hi =
          std::min(lo + static_cast<std::size_t>(fanout), n);
      Node node;
      node.leaf = leafLevel;
      node.firstChild = static_cast<std::int32_t>(children_.size());
      node.childCount = static_cast<std::int32_t>(hi - lo);
      Rect bounds;
      for (std::size_t k = lo; k < hi; ++k) {
        children_.push_back(currentIds[order[k]]);
        bounds = bounds.bboxUnion(currentBounds[order[k]]);
      }
      node.bounds = bounds;
      nextIds.push_back(static_cast<std::int32_t>(nodes_.size()));
      nextBounds.push_back(bounds);
      nodes_.push_back(node);
    }
    ++height_;
    if (nextIds.size() == 1) break;  // the single node just emitted is root
    currentIds = std::move(nextIds);
    currentBounds = std::move(nextBounds);
    leafLevel = false;
  }
}

std::vector<std::uint32_t> RTree::query(const Rect& query) const {
  std::vector<std::uint32_t> out;
  visit(query, [&out](std::uint32_t id) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ofl::geom
