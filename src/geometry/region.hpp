// Region: a value-semantic rectilinear area stored as a canonical disjoint
// rectangle set. Thin, convenient facade over the boolean engine for the
// fill flow (free-space computation, overlay measurement, clipping).
#pragma once

#include <span>
#include <vector>

#include "geometry/boolean.hpp"
#include "geometry/rect.hpp"

namespace ofl::geom {

class Region {
 public:
  Region() = default;
  /// From possibly-overlapping rects; normalizes to a disjoint set.
  explicit Region(std::span<const Rect> rects,
                  SweepKernel kernel = SweepKernel::kFlat);
  explicit Region(const std::vector<Rect>& rects,
                  SweepKernel kernel = SweepKernel::kFlat)
      : Region(std::span<const Rect>(rects), kernel) {}
  explicit Region(const Rect& rect);

  /// Adopts rects that the caller guarantees are already disjoint
  /// (e.g. output of booleanOp); skips normalization.
  static Region fromDisjoint(std::vector<Rect> rects);

  const std::vector<Rect>& rects() const { return rects_; }
  bool empty() const { return rects_.empty(); }
  std::size_t count() const { return rects_.size(); }

  Area area() const;
  Rect bbox() const;

  /// Boolean combinations. The kernel selects the sweep's coverage
  /// structure only (see SweepKernel); results are bit-identical across
  /// kernels.
  Region unite(const Region& other,
               SweepKernel kernel = SweepKernel::kFlat) const;
  Region intersect(const Region& other,
                   SweepKernel kernel = SweepKernel::kFlat) const;
  Region subtract(const Region& other,
                  SweepKernel kernel = SweepKernel::kFlat) const;

  /// Region clipped to `window`.
  Region clipped(const Rect& window) const;

  /// Area of overlap with a raw rect set without materializing the result.
  /// Counts every covered point ONCE even when `other` self-overlaps (the
  /// boolean engine tracks coverage counts, not pairwise products) — unlike
  /// the pairwise-sum kernel overlapAreaSum(), which counts a point once
  /// per covering shape. The two agree only on pairwise-disjoint input;
  /// overlapAreaDisjoint() asserts exactly that.
  Area overlapArea(std::span<const Rect> other) const {
    return intersectionArea(rects_, other);
  }
  Area overlapArea(const Region& other) const {
    return overlapArea(other.rects_);
  }

  /// Region minus a raw (possibly self-overlapping) rect set, in one
  /// boolean sweep. Byte-identical to subtract(Region(other)) — the sweep
  /// output is a pure function of the covered point set — but skips the
  /// normalization pass over `other`.
  Region subtract(std::span<const Rect> other,
                  SweepKernel kernel = SweepKernel::kFlat) const {
    return fromDisjoint(booleanOp(rects_, other, BoolOp::kSubtract, kernel));
  }

  /// Region shrunk by `d` DBU on all four sides of every covered point
  /// (morphological erosion). Used to keep fills `d` away from region
  /// boundaries. d must be >= 0.
  Region shrunk(Coord d) const;

  friend bool operator==(const Region&, const Region&) = default;

 private:
  std::vector<Rect> rects_;  // disjoint, RectYXLess-sorted
};

}  // namespace ofl::geom
