// Region: a value-semantic rectilinear area stored as a canonical disjoint
// rectangle set. Thin, convenient facade over the boolean engine for the
// fill flow (free-space computation, overlay measurement, clipping).
#pragma once

#include <span>
#include <vector>

#include "geometry/boolean.hpp"
#include "geometry/rect.hpp"

namespace ofl::geom {

class Region {
 public:
  Region() = default;
  /// From possibly-overlapping rects; normalizes to a disjoint set.
  explicit Region(std::span<const Rect> rects);
  explicit Region(const std::vector<Rect>& rects)
      : Region(std::span<const Rect>(rects)) {}
  explicit Region(const Rect& rect);

  /// Adopts rects that the caller guarantees are already disjoint
  /// (e.g. output of booleanOp); skips normalization.
  static Region fromDisjoint(std::vector<Rect> rects);

  const std::vector<Rect>& rects() const { return rects_; }
  bool empty() const { return rects_.empty(); }
  std::size_t count() const { return rects_.size(); }

  Area area() const;
  Rect bbox() const;

  Region unite(const Region& other) const;
  Region intersect(const Region& other) const;
  Region subtract(const Region& other) const;

  /// Region clipped to `window`.
  Region clipped(const Rect& window) const;

  /// Area of overlap with a raw rect set without materializing the result.
  Area overlapArea(std::span<const Rect> other) const {
    return intersectionArea(rects_, other);
  }
  Area overlapArea(const Region& other) const {
    return overlapArea(other.rects_);
  }

  /// Region shrunk by `d` DBU on all four sides of every covered point
  /// (morphological erosion). Used to keep fills `d` away from region
  /// boundaries. d must be >= 0.
  Region shrunk(Coord d) const;

  friend bool operator==(const Region&, const Region&) = default;

 private:
  std::vector<Rect> rects_;  // disjoint, RectYXLess-sorted
};

}  // namespace ofl::geom
