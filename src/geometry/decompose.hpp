// Polygon-to-rectangle conversion (paper Section 3 step 1, ref [16]
// Gourley & Green) plus rectangle-set compaction helpers.
#pragma once

#include <vector>

#include "geometry/polygon.hpp"
#include "geometry/rect.hpp"

namespace ofl::geom {

/// Decomposes one simple rectilinear polygon into disjoint rectangles using
/// horizontal slab sweeping with even-odd parity. Output rects are disjoint
/// and their areas sum to polygon.area().
std::vector<Rect> decompose(const Polygon& polygon);

/// Decomposes a set of loops under even-odd fill rule: a point is inside
/// when covered by an odd number of loops. This is how GDSII/OASIS express
/// polygons with holes (hole loops listed alongside outer loops).
std::vector<Rect> decomposeEvenOdd(const std::vector<Polygon>& loops);

/// Merges rects that share a full vertical edge and identical y-span into
/// single wider rects; input must be disjoint. Reduces shape count (and
/// thus GDS file size) without changing covered area.
std::vector<Rect> mergeHorizontal(std::vector<Rect> rects);

/// Merges rects that share a full horizontal edge and identical x-span.
std::vector<Rect> mergeVertical(std::vector<Rect> rects);

/// In-place variant of mergeVertical for reused scratch buffers: same
/// sort + merge, compacting into the input vector instead of allocating.
void mergeVerticalInPlace(std::vector<Rect>& rects);

}  // namespace ofl::geom
