// Rectilinear (Manhattan) polygons.
//
// A Polygon is a simple closed loop of vertices with strictly axis-parallel
// edges, stored WITHOUT repeating the first vertex at the end (GDSII repeats
// it on disk; the reader strips it). Orientation may be CW or CCW; area()
// reports the absolute value.
#pragma once

#include <vector>

#include "geometry/rect.hpp"

namespace ofl::geom {

class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices)
      : vertices_(std::move(vertices)) {}

  /// Axis-aligned rectangle as a 4-vertex polygon.
  static Polygon fromRect(const Rect& r);

  const std::vector<Point>& vertices() const { return vertices_; }
  bool empty() const { return vertices_.empty(); }
  std::size_t size() const { return vertices_.size(); }

  /// True when the loop is closed, has >= 4 vertices, alternates
  /// horizontal/vertical edges and has no zero-length edges.
  bool isValidRectilinear() const;

  /// Absolute shoelace area. Assumes a simple (non self-intersecting) loop.
  Area area() const;

  /// Bounding box (empty Rect for an empty polygon).
  Rect bbox() const;

 private:
  std::vector<Point> vertices_;
};

}  // namespace ofl::geom
