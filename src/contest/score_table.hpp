// ICCAD 2014 contest scoring schema (paper Table 2 / Eqns. 3-4).
//
// Every metric k contributes  s_k = max(0, 1 - x_k / beta_k)  weighted by
// alpha_k. Testcase Quality sums the five solution-quality terms; Testcase
// Score adds runtime and memory. The alpha weights follow the published
// Table 2 (0.2/0.2/0.2/0.15/0.05/0.15/0.05); beta values are recalibrated
// for this library's scaled benchmark suites (see EXPERIMENTS.md).
#pragma once

#include <string>

namespace ofl::contest {

struct ScoreCoefficients {
  double alpha = 0.0;
  double beta = 1.0;

  /// Eqn. (4): f(x) = max(0, 1 - x / beta).
  double score(double raw) const;
};

struct ScoreTable {
  ScoreCoefficients overlay{0.2, 1.0};
  ScoreCoefficients variation{0.2, 1.0};
  ScoreCoefficients line{0.2, 1.0};
  ScoreCoefficients outlier{0.15, 1.0};
  ScoreCoefficients size{0.05, 1.0};
  ScoreCoefficients runtime{0.15, 1.0};
  ScoreCoefficients memory{0.05, 1.0};
};

/// Published coefficient tables for the three scaled suites (analogues of
/// contest designs s, b, m). Betas are documented in EXPERIMENTS.md.
ScoreTable scoreTableFor(const std::string& suite);

}  // namespace ofl::contest
