// Synthetic ICCAD 2014-style benchmark suites (DESIGN.md Section 2
// explains the substitution for the unavailable contest GDSII designs).
//
// Each suite is a 3-metal-layer layout whose wire texture is deliberately
// non-uniform: a smooth random utilization field plus dense macro blocks
// and near-empty channels. That spatial structure is what makes variation,
// line-hotspot and outlier metrics non-trivial — exactly the regime the
// contest benchmarks probe. Generation is deterministic per seed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "layout/design_rules.hpp"
#include "layout/layout.hpp"

namespace ofl::contest {

struct BenchmarkSpec {
  std::string name = "s";
  geom::Rect die;
  int numLayers = 3;
  geom::Coord windowSize = 1200;
  layout::DesignRules rules;
  std::uint64_t seed = 1;

  // Wiring texture.
  geom::Coord trackPitch = 60;
  geom::Coord wireWidth = 24;
  geom::Coord segmentUnit = 240;   // mean wire segment length
  double baseUtilization = 0.35;   // average keep probability
  int macroCount = 4;              // dense blocks
  int channelCount = 3;            // near-empty routing channels
};

class BenchmarkGenerator {
 public:
  /// Published specs of the scaled suites "s", "b", "m" (Table 2 analog)
  /// plus the contest-scale "xl" (millions of wires; meant for the
  /// streaming `fill --stream` path and bench_scale, never for the
  /// in-memory test suites).
  static BenchmarkSpec spec(const std::string& suite);

  /// Receives every generated wire, layer by layer in emission order.
  using Emit = std::function<void(int layer, const geom::Rect& wire)>;

  /// Streams the wires of `spec` through `emit` without materializing a
  /// Layout — O(1) memory, which is what makes "xl" generable at all.
  /// Identical RNG consumption to generate(): the same spec produces the
  /// same wires either way (pinned by test_contest).
  static void generateStream(const BenchmarkSpec& spec, const Emit& emit);

  /// Generates the wire layout of `spec` (no fills). Thin wrapper over
  /// generateStream that collects into a Layout.
  static layout::Layout generate(const BenchmarkSpec& spec);
};

}  // namespace ofl::contest
