// Table-style reporting helpers for the bench harnesses (Table 2 / Table 3
// layouts of the paper).
#pragma once

#include <string>
#include <vector>

#include "contest/evaluator.hpp"

namespace ofl::contest {

struct ResultRow {
  std::string design;
  std::string team;   // filler name ("ours", "tile-lp", ...)
  ScoreBreakdown scores;
  RawMetrics raw;
  double runtimeSeconds = 0.0;
  double memoryMiB = 0.0;
};

/// Prints the Table 3 grid (one block per design, one row per team).
void printTable3(const std::vector<ResultRow>& rows);

/// Prints a Table 2-style statistics block for one generated suite.
struct SuiteStats {
  std::string design;
  std::size_t polygons = 0;
  int layers = 0;
  double wireFileMB = 0.0;
  ScoreTable table;
};
void printTable2(const std::vector<SuiteStats>& stats);

}  // namespace ofl::contest
