// JSON serialization of contest results, for plotting/regression tooling
// around the benches (bench_table3 --json, CI tracking).
#pragma once

#include <string>
#include <vector>

#include "contest/report.hpp"

namespace ofl::contest {

/// Serializes result rows as a JSON array of objects with design, team,
/// raw metrics and scores. Output is deterministic (fixed key order,
/// fixed float formatting).
std::string toJson(const std::vector<ResultRow>& rows);

/// Writes toJson() to a file; returns false on IO failure.
bool writeJson(const std::vector<ResultRow>& rows, const std::string& path);

}  // namespace ofl::contest
