// Contest evaluator: raw metrics (Section 2) and scores (Eqns. 3-4,
// Table 2/3 schema) of a filled layout.
#pragma once

#include <vector>

#include "contest/score_table.hpp"
#include "density/density_map.hpp"
#include "layout/design_rules.hpp"
#include "layout/layout.hpp"

namespace ofl::contest {

struct RawMetrics {
  double overlay = 0.0;     // sum over layer pairs of fill-induced overlap
  double variation = 0.0;   // sum_l sigma(l)
  double line = 0.0;        // sum_l lh(l)
  double outlier = 0.0;     // (sum_l sigma(l)) * (sum_l oh(l)), per Eqn. 3
  double fileSizeMB = 0.0;  // output GDSII stream size
  std::size_t fillCount = 0;
  std::size_t drcViolations = 0;

  std::vector<double> layerSigma;
  std::vector<double> layerLine;
  std::vector<double> layerOutlier;
  std::vector<double> pairOverlay;  // overlay per adjacent layer pair
};

struct ScoreBreakdown {
  double overlay = 0.0;
  double variation = 0.0;
  double line = 0.0;
  double outlier = 0.0;
  double size = 0.0;
  double runtime = 0.0;
  double memory = 0.0;
  double quality = 0.0;  // Testcase Quality (excludes runtime/memory)
  double total = 0.0;    // Testcase Score
};

class Evaluator {
 public:
  Evaluator(geom::Coord windowSize, ScoreTable table,
            layout::DesignRules rules)
      : windowSize_(windowSize), table_(table), rules_(rules) {}

  /// Measures the layout. Overlay counts the overlap area between each
  /// layer's shapes and its upper neighbor's shapes minus the wire-wire
  /// overlap that existed before filling (only fill-induced coupling is
  /// charged, Section 2.1).
  RawMetrics measure(const layout::Layout& layout) const;

  ScoreBreakdown score(const RawMetrics& raw, double runtimeSeconds,
                       double memoryMiB) const;

  /// Per-window fill-induced overlay between `lowerLayer` and the layer
  /// above, normalized by window area (an overlay "density" heatmap —
  /// where the coupling cost concentrates).
  density::DensityMap overlayMap(const layout::Layout& layout,
                                 int lowerLayer) const;

  const ScoreTable& table() const { return table_; }

 private:
  geom::Coord windowSize_;
  ScoreTable table_;
  layout::DesignRules rules_;
};

}  // namespace ofl::contest
