#include "contest/json_report.hpp"

#include <cstdio>

namespace ofl::contest {
namespace {

void appendKv(std::string& out, const char* key, double value, bool last = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6g%s", key, value,
                last ? "" : ", ");
  out += buf;
}

void appendKv(std::string& out, const char* key, const std::string& value,
              bool last = false) {
  out += "\"";
  out += key;
  out += "\": \"";
  // Team/design names are identifiers; escape quotes/backslashes anyway.
  for (const char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += last ? "\"" : "\", ";
}

}  // namespace

std::string toJson(const std::vector<ResultRow>& rows) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ResultRow& r = rows[i];
    out += "  {";
    appendKv(out, "design", r.design);
    appendKv(out, "team", r.team);
    appendKv(out, "runtime_seconds", r.runtimeSeconds);
    appendKv(out, "memory_mib", r.memoryMiB);
    appendKv(out, "raw_overlay", r.raw.overlay);
    appendKv(out, "raw_variation", r.raw.variation);
    appendKv(out, "raw_line", r.raw.line);
    appendKv(out, "raw_outlier", r.raw.outlier);
    appendKv(out, "raw_file_mb", r.raw.fileSizeMB);
    appendKv(out, "fill_count", static_cast<double>(r.raw.fillCount));
    appendKv(out, "drc_violations",
             static_cast<double>(r.raw.drcViolations));
    appendKv(out, "score_overlay", r.scores.overlay);
    appendKv(out, "score_variation", r.scores.variation);
    appendKv(out, "score_line", r.scores.line);
    appendKv(out, "score_outlier", r.scores.outlier);
    appendKv(out, "score_size", r.scores.size);
    appendKv(out, "score_runtime", r.scores.runtime);
    appendKv(out, "score_memory", r.scores.memory);
    appendKv(out, "quality", r.scores.quality);
    appendKv(out, "score", r.scores.total, /*last=*/true);
    out += i + 1 < rows.size() ? "},\n" : "}\n";
  }
  out += "]\n";
  return out;
}

bool writeJson(const std::vector<ResultRow>& rows, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = toJson(rows);
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

}  // namespace ofl::contest
