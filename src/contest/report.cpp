#include "contest/report.hpp"

#include <cstdio>

namespace ofl::contest {

void printTable3(const std::vector<ResultRow>& rows) {
  std::printf(
      "%-4s %-12s %8s %10s %7s %8s %6s %9s %8s %9s %7s\n", "Des", "Team",
      "Overlay*", "Variation*", "Line*", "Outlier*", "Size*", "Run-time*",
      "Memory*", "Quality", "Score");
  std::string lastDesign;
  for (const ResultRow& r : rows) {
    if (r.design != lastDesign && !lastDesign.empty()) {
      std::printf("%s\n", std::string(100, '-').c_str());
    }
    lastDesign = r.design;
    std::printf(
        "%-4s %-12s %8.3f %10.3f %7.3f %8.3f %6.3f %9.3f %8.3f %9.3f %7.3f\n",
        r.design.c_str(), r.team.c_str(), r.scores.overlay,
        r.scores.variation, r.scores.line, r.scores.outlier, r.scores.size,
        r.scores.runtime, r.scores.memory, r.scores.quality, r.scores.total);
  }
}

void printTable2(const std::vector<SuiteStats>& stats) {
  std::printf("%-6s %9s %4s %10s | %-42s\n", "Design", "#P", "#L",
              "File size", "alpha/beta per score");
  for (const SuiteStats& s : stats) {
    std::printf("%-6s %9zu %4d %9.2fM | ", s.design.c_str(), s.polygons,
                s.layers, s.wireFileMB);
    std::printf(
        "ov %.2f/%.3g var %.2f/%.3g line %.2f/%.3g out %.2f/%.3g "
        "size %.2f/%.3g rt %.2f/%.3g mem %.2f/%.3g\n",
        s.table.overlay.alpha, s.table.overlay.beta, s.table.variation.alpha,
        s.table.variation.beta, s.table.line.alpha, s.table.line.beta,
        s.table.outlier.alpha, s.table.outlier.beta, s.table.size.alpha,
        s.table.size.beta, s.table.runtime.alpha, s.table.runtime.beta,
        s.table.memory.alpha, s.table.memory.beta);
  }
}

}  // namespace ofl::contest
