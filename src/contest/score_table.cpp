#include "contest/score_table.hpp"

#include <algorithm>
#include <cassert>

namespace ofl::contest {

double ScoreCoefficients::score(double raw) const {
  if (beta <= 0.0) return 0.0;
  return std::max(0.0, 1.0 - raw / beta);
}

ScoreTable scoreTableFor(const std::string& suite) {
  // Beta calibration mirrors how the contest set its own (from reference
  // solutions on each design): chosen so a competent filler scores in the
  // 0.3..0.95 band per metric on our scaled suites. Alphas are Table 2's.
  ScoreTable t;
  if (suite == "s") {
    t.overlay = {0.2, 95.0e6};    // DBU^2 of fill-induced overlay
    t.variation = {0.2, 0.077};   // paper Table 2's beta for design s
    t.line = {0.2, 11.758};       // paper Table 2's beta for design s
    t.outlier = {0.15, 0.014};    // paper Table 2's beta for design s
    t.size = {0.05, 8.0};         // MB of output GDS
    t.runtime = {0.15, 5.0};      // seconds
    t.memory = {0.05, 1024.0};    // MiB
  } else if (suite == "b") {
    // b's die is ~3x s's area and ~3x its window count: extensive metrics
    // (overlay, line) scale accordingly, intensive ones loosen slightly.
    t.overlay = {0.2, 290.0e6};
    t.variation = {0.2, 0.09};
    t.line = {0.2, 36.0};
    t.outlier = {0.15, 0.03};
    t.size = {0.05, 24.0};
    t.runtime = {0.15, 30.0};
    t.memory = {0.05, 2048.0};
  } else if (suite == "m") {
    // m is ~6.25x s's area / window count.
    t.overlay = {0.2, 590.0e6};
    t.variation = {0.2, 0.09};
    t.line = {0.2, 73.0};
    t.outlier = {0.15, 0.03};
    t.size = {0.05, 48.0};
    t.runtime = {0.15, 90.0};
    t.memory = {0.05, 2048.0};
  } else {
    assert(false && "unknown suite");
  }
  return t;
}

}  // namespace ofl::contest
