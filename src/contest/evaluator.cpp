#include "contest/evaluator.hpp"

#include "density/density_map.hpp"
#include "density/metrics.hpp"
#include "gds/gds_writer.hpp"
#include "geometry/boolean.hpp"
#include "layout/drc_checker.hpp"
#include "layout/window_grid.hpp"

namespace ofl::contest {
namespace {

// Overlap area of two global shape sets, computed window-by-window so each
// Boolean sweep stays small. Window clipping partitions the plane, so the
// per-window intersection areas sum exactly to the global one.
double bucketedOverlapArea(const layout::WindowGrid& grid,
                           const std::vector<geom::Rect>& a,
                           const std::vector<geom::Rect>& b) {
  const auto bucketsA = grid.bucketClipped(a);
  const auto bucketsB = grid.bucketClipped(b);
  double total = 0.0;
  for (std::size_t w = 0; w < bucketsA.size(); ++w) {
    if (bucketsA[w].empty() || bucketsB[w].empty()) continue;
    total += static_cast<double>(
        geom::intersectionArea(bucketsA[w], bucketsB[w]));
  }
  return total;
}

}  // namespace

RawMetrics Evaluator::measure(const layout::Layout& layout) const {
  RawMetrics raw;
  const layout::WindowGrid grid(layout.die(), windowSize_);

  double sigmaSum = 0.0;
  double ohSum = 0.0;
  for (int l = 0; l < layout.numLayers(); ++l) {
    const density::DensityMap map = density::DensityMap::compute(layout, l, grid);
    const density::DensityMetrics m = density::computeMetrics(map);
    raw.layerSigma.push_back(m.sigma);
    raw.layerLine.push_back(m.lineHotspot);
    raw.layerOutlier.push_back(m.outlierHotspot);
    raw.variation += m.sigma;
    raw.line += m.lineHotspot;
    sigmaSum += m.sigma;
    ohSum += m.outlierHotspot;
  }
  raw.outlier = sigmaSum * ohSum;

  for (int l = 0; l + 1 < layout.numLayers(); ++l) {
    std::vector<geom::Rect> lower = layout.layer(l).wires;
    lower.insert(lower.end(), layout.layer(l).fills.begin(),
                 layout.layer(l).fills.end());
    std::vector<geom::Rect> upper = layout.layer(l + 1).wires;
    upper.insert(upper.end(), layout.layer(l + 1).fills.begin(),
                 layout.layer(l + 1).fills.end());
    const double all = bucketedOverlapArea(grid, lower, upper);
    const double wireOnly = bucketedOverlapArea(grid, layout.layer(l).wires,
                                                layout.layer(l + 1).wires);
    raw.pairOverlay.push_back(all - wireOnly);
    raw.overlay += all - wireOnly;
  }

  raw.fileSizeMB =
      static_cast<double>(gds::Writer::streamSize(layout.toGds())) / 1e6;
  raw.fillCount = layout.fillCount();
  raw.drcViolations =
      layout::DrcChecker(rules_).check(layout, /*maxViolations=*/50).size();
  return raw;
}

density::DensityMap Evaluator::overlayMap(const layout::Layout& layout,
                                          int lowerLayer) const {
  const layout::WindowGrid grid(layout.die(), windowSize_);
  std::vector<double> values(static_cast<std::size_t>(grid.windowCount()),
                             0.0);
  if (lowerLayer >= 0 && lowerLayer + 1 < layout.numLayers()) {
    std::vector<geom::Rect> lower = layout.layer(lowerLayer).wires;
    lower.insert(lower.end(), layout.layer(lowerLayer).fills.begin(),
                 layout.layer(lowerLayer).fills.end());
    std::vector<geom::Rect> upper = layout.layer(lowerLayer + 1).wires;
    upper.insert(upper.end(), layout.layer(lowerLayer + 1).fills.begin(),
                 layout.layer(lowerLayer + 1).fills.end());
    const auto bucketsLower = grid.bucketClipped(lower);
    const auto bucketsUpper = grid.bucketClipped(upper);
    const auto wiresLower = grid.bucketClipped(layout.layer(lowerLayer).wires);
    const auto wiresUpper =
        grid.bucketClipped(layout.layer(lowerLayer + 1).wires);
    for (int j = 0; j < grid.rows(); ++j) {
      for (int i = 0; i < grid.cols(); ++i) {
        const auto w = static_cast<std::size_t>(grid.flatIndex(i, j));
        const geom::Area windowArea = grid.windowRect(i, j).area();
        if (windowArea <= 0) continue;
        const auto all = static_cast<double>(
            geom::intersectionArea(bucketsLower[w], bucketsUpper[w]));
        const auto wiresOnly = static_cast<double>(
            geom::intersectionArea(wiresLower[w], wiresUpper[w]));
        values[w] = (all - wiresOnly) / static_cast<double>(windowArea);
      }
    }
  }
  return density::DensityMap(grid.cols(), grid.rows(), std::move(values));
}

ScoreBreakdown Evaluator::score(const RawMetrics& raw, double runtimeSeconds,
                                double memoryMiB) const {
  ScoreBreakdown s;
  s.overlay = table_.overlay.score(raw.overlay);
  s.variation = table_.variation.score(raw.variation);
  s.line = table_.line.score(raw.line);
  s.outlier = table_.outlier.score(raw.outlier);
  s.size = table_.size.score(raw.fileSizeMB);
  s.runtime = table_.runtime.score(runtimeSeconds);
  s.memory = table_.memory.score(memoryMiB);
  s.quality = table_.overlay.alpha * s.overlay +
              table_.variation.alpha * s.variation +
              table_.line.alpha * s.line + table_.outlier.alpha * s.outlier +
              table_.size.alpha * s.size;
  s.total = s.quality + table_.runtime.alpha * s.runtime +
            table_.memory.alpha * s.memory;
  return s;
}

}  // namespace ofl::contest
