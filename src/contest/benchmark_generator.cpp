#include "contest/benchmark_generator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace ofl::contest {
namespace {

// Smooth utilization field: coarse random control grid, bilinear sampling.
class UtilizationField {
 public:
  UtilizationField(const geom::Rect& die, double base, Rng& rng)
      : die_(die) {
    values_.resize(static_cast<std::size_t>(kGrid) * kGrid);
    for (double& v : values_) {
      // Log-normal-ish spread around the base keeps a few naturally hot
      // and cold cells.
      v = std::clamp(base * std::exp(rng.normal(0.0, 0.5)), 0.02, 0.9);
    }
  }

  double at(geom::Coord x, geom::Coord y) const {
    const double fx = std::clamp(
        static_cast<double>(x - die_.xl) / die_.width() * (kGrid - 1), 0.0,
        static_cast<double>(kGrid - 1));
    const double fy = std::clamp(
        static_cast<double>(y - die_.yl) / die_.height() * (kGrid - 1), 0.0,
        static_cast<double>(kGrid - 1));
    const int ix = std::min(static_cast<int>(fx), kGrid - 2);
    const int iy = std::min(static_cast<int>(fy), kGrid - 2);
    const double tx = fx - ix;
    const double ty = fy - iy;
    auto v = [this](int gx, int gy) {
      return values_[static_cast<std::size_t>(gy) * kGrid + gx];
    };
    return (1 - tx) * (1 - ty) * v(ix, iy) + tx * (1 - ty) * v(ix + 1, iy) +
           (1 - tx) * ty * v(ix, iy + 1) + tx * ty * v(ix + 1, iy + 1);
  }

 private:
  static constexpr int kGrid = 9;
  geom::Rect die_;
  std::vector<double> values_;
};

}  // namespace

BenchmarkSpec BenchmarkGenerator::spec(const std::string& suite) {
  BenchmarkSpec s;
  s.name = suite;
  s.rules.minWidth = 10;
  s.rules.minSpacing = 10;
  s.rules.minArea = 200;
  s.rules.maxFillSize = 300;
  s.windowSize = 1200;
  if (suite == "s") {
    s.die = {0, 0, 16 * 1200, 16 * 1200};
    s.seed = 1001;
    s.macroCount = 4;
    s.channelCount = 3;
  } else if (suite == "b") {
    s.die = {0, 0, 28 * 1200, 28 * 1200};
    s.seed = 2002;
    s.macroCount = 8;
    s.channelCount = 5;
    s.baseUtilization = 0.4;
  } else if (suite == "m") {
    s.die = {0, 0, 40 * 1200, 40 * 1200};
    s.seed = 3003;
    s.macroCount = 12;
    s.channelCount = 7;
    s.baseUtilization = 0.4;
    s.segmentUnit = 200;
  } else if (suite == "xl") {
    // Contest scale: ~2M+ wires over a 160x160-window die. Generate with
    // generateStream and fill with --stream; the in-memory path would need
    // gigabytes just for the window problems.
    s.die = {0, 0, 160 * 1200, 160 * 1200};
    s.seed = 9009;
    s.macroCount = 24;
    s.channelCount = 11;
    s.baseUtilization = 0.4;
    s.segmentUnit = 200;
  } else {
    s.die = {0, 0, 8 * 1200, 8 * 1200};  // tiny default for tests
    s.seed = 7;
    s.macroCount = 2;
    s.channelCount = 1;
  }
  return s;
}

void BenchmarkGenerator::generateStream(const BenchmarkSpec& spec,
                                        const Emit& emit) {
  Rng rng(spec.seed);
  const UtilizationField field(spec.die, spec.baseUtilization, rng);

  // Macro blocks and channels are shared across layers, which is what
  // couples inter-layer free space (the structure Alg. 1 exploits).
  std::vector<geom::Rect> macros;
  for (int k = 0; k < spec.macroCount; ++k) {
    const geom::Coord w = rng.uniformInt(2, 4) * spec.windowSize;
    const geom::Coord h = rng.uniformInt(2, 4) * spec.windowSize;
    const geom::Coord x =
        rng.uniformInt(spec.die.xl, std::max(spec.die.xl, spec.die.xh - w));
    const geom::Coord y =
        rng.uniformInt(spec.die.yl, std::max(spec.die.yl, spec.die.yh - h));
    macros.push_back({x, y, std::min(x + w, spec.die.xh),
                      std::min(y + h, spec.die.yh)});
  }
  std::vector<geom::Rect> channels;
  for (int k = 0; k < spec.channelCount; ++k) {
    // Alternate horizontal / vertical channels about one window wide.
    const geom::Coord thickness = spec.windowSize;
    if (k % 2 == 0) {
      const geom::Coord y = rng.uniformInt(
          spec.die.yl, std::max(spec.die.yl, spec.die.yh - thickness));
      channels.push_back({spec.die.xl, y, spec.die.xh, y + thickness});
    } else {
      const geom::Coord x = rng.uniformInt(
          spec.die.xl, std::max(spec.die.xl, spec.die.xh - thickness));
      channels.push_back({x, spec.die.yl, x + thickness, spec.die.yh});
    }
  }

  auto localUtilization = [&](geom::Coord x, geom::Coord y) {
    double u = field.at(x, y);
    const geom::Point p{x, y};
    for (const geom::Rect& m : macros) {
      if (m.contains(p)) u = std::max(u, 0.85);
    }
    for (const geom::Rect& c : channels) {
      if (c.contains(p)) u = std::min(u, 0.04);
    }
    return u;
  };

  for (int l = 0; l < spec.numLayers; ++l) {
    const bool horizontal = (l % 2 == 0);
    const geom::Coord alongLo = horizontal ? spec.die.xl : spec.die.yl;
    const geom::Coord alongHi = horizontal ? spec.die.xh : spec.die.yh;
    const geom::Coord acrossLo = horizontal ? spec.die.yl : spec.die.xl;
    const geom::Coord acrossHi = horizontal ? spec.die.yh : spec.die.xh;

    for (geom::Coord track = acrossLo + spec.trackPitch / 2;
         track + spec.wireWidth <= acrossHi; track += spec.trackPitch) {
      geom::Coord cursor = alongLo;
      while (cursor < alongHi) {
        const geom::Coord len = std::max<geom::Coord>(
            spec.segmentUnit / 4,
            static_cast<geom::Coord>(rng.uniformInt(spec.segmentUnit / 2,
                                                    spec.segmentUnit * 2)));
        const geom::Coord end = std::min(cursor + len, alongHi);
        const geom::Coord midAlong = (cursor + end) / 2;
        const geom::Coord x = horizontal ? midAlong : track;
        const geom::Coord y = horizontal ? track : midAlong;
        // Segments clipped to a sliver at the die edge would violate the
        // min width rule; drop them.
        if (end - cursor >= spec.rules.minWidth &&
            rng.bernoulli(localUtilization(x, y))) {
          if (horizontal) {
            emit(l, {cursor, track, end, track + spec.wireWidth});
          } else {
            emit(l, {track, cursor, track + spec.wireWidth, end});
          }
        }
        // Gap before the next segment keeps wires DRC-clean.
        cursor = end + spec.rules.minSpacing +
                 rng.uniformInt(0, spec.segmentUnit / 2);
      }
    }
  }
}

layout::Layout BenchmarkGenerator::generate(const BenchmarkSpec& spec) {
  layout::Layout layout(spec.die, spec.numLayers);
  generateStream(spec, [&](int l, const geom::Rect& wire) {
    layout.layer(l).wires.push_back(wire);
  });
  return layout;
}

}  // namespace ofl::contest
