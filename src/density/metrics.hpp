// Density distribution metrics (paper Section 2.2, Eqns. 1-2):
//   variation      sigma = population std-dev of window densities
//   line hotspots  lh = sum_i sum_j |d(i,j) - columnMean_i|     (Eqn. 1)
//   outlier hotspots oh = sum max(0, |d(i,j) - mean| - 3 sigma) (Eqn. 2)
#pragma once

#include "density/density_map.hpp"

namespace ofl::density {

struct DensityMetrics {
  double mean = 0.0;
  double sigma = 0.0;     // variation
  double lineHotspot = 0.0;
  double outlierHotspot = 0.0;
};

double meanDensity(const DensityMap& map);
double variation(const DensityMap& map);
double lineHotspots(const DensityMap& map);
double outlierHotspots(const DensityMap& map);

/// All four in one pass over the map.
DensityMetrics computeMetrics(const DensityMap& map);

}  // namespace ofl::density
