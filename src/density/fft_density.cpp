#include "density/fft_density.hpp"

#include <cmath>
#include <cstddef>

namespace ofl::density {
namespace {

std::size_t nextPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Kernel half-width: truncate the Gaussian at 3 sigma.
int kernelRadius(double sigma) {
  return static_cast<int>(std::ceil(3.0 * sigma));
}

double kernelWeight(int dx, int dy, double sigma) {
  return std::exp(-(static_cast<double>(dx) * dx + static_cast<double>(dy) * dy) /
                  (2.0 * sigma * sigma));
}

// 2D FFT over a W x H row-major complex grid: transform rows, then columns.
void fft2d(std::vector<double>& re, std::vector<double>& im, std::size_t w,
           std::size_t h, bool inverse) {
  std::vector<double> tr(w), ti(w);
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      tr[x] = re[y * w + x];
      ti[x] = im[y * w + x];
    }
    FftDensity::fft(tr, ti, inverse);
    for (std::size_t x = 0; x < w; ++x) {
      re[y * w + x] = tr[x];
      im[y * w + x] = ti[x];
    }
  }
  std::vector<double> cr(h), ci(h);
  for (std::size_t x = 0; x < w; ++x) {
    for (std::size_t y = 0; y < h; ++y) {
      cr[y] = re[y * w + x];
      ci[y] = im[y * w + x];
    }
    FftDensity::fft(cr, ci, inverse);
    for (std::size_t y = 0; y < h; ++y) {
      re[y * w + x] = cr[y];
      im[y * w + x] = ci[y];
    }
  }
}

// Circular convolution of `data` (cols x rows, zero-padded into W x H)
// with the truncated Gaussian; padding is large enough that no wraparound
// reaches the extracted region.
std::vector<double> convolve(const std::vector<double>& data, int cols,
                             int rows, double sigma, std::size_t w,
                             std::size_t h) {
  const int radius = kernelRadius(sigma);
  std::vector<double> ar(w * h, 0.0), ai(w * h, 0.0);
  for (int j = 0; j < rows; ++j) {
    for (int i = 0; i < cols; ++i) {
      ar[static_cast<std::size_t>(j) * w + static_cast<std::size_t>(i)] =
          data[static_cast<std::size_t>(j) * static_cast<std::size_t>(cols) +
               static_cast<std::size_t>(i)];
    }
  }
  std::vector<double> kr(w * h, 0.0), ki(w * h, 0.0);
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      const std::size_t x = static_cast<std::size_t>((dx + static_cast<int>(w)) %
                                                     static_cast<int>(w));
      const std::size_t y = static_cast<std::size_t>((dy + static_cast<int>(h)) %
                                                     static_cast<int>(h));
      kr[y * w + x] = kernelWeight(dx, dy, sigma);
    }
  }
  fft2d(ar, ai, w, h, false);
  fft2d(kr, ki, w, h, false);
  for (std::size_t n = 0; n < w * h; ++n) {
    const double r = ar[n] * kr[n] - ai[n] * ki[n];
    const double i = ar[n] * ki[n] + ai[n] * kr[n];
    ar[n] = r;
    ai[n] = i;
  }
  fft2d(ar, ai, w, h, true);
  return ar;
}

}  // namespace

void FftDensity::fft(std::vector<double>& re, std::vector<double>& im,
                     bool inverse) {
  const std::size_t n = re.size();
  if (n < 2) return;
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
  const double dir = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = dir * 2.0 * M_PI / static_cast<double>(len);
    const double wr = std::cos(ang), wi = std::sin(ang);
    for (std::size_t i = 0; i < n; i += len) {
      double cr = 1.0, ci = 0.0;
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::size_t a = i + k, b = i + k + len / 2;
        const double vr = re[b] * cr - im[b] * ci;
        const double vi = re[b] * ci + im[b] * cr;
        re[b] = re[a] - vr;
        im[b] = im[a] - vi;
        re[a] += vr;
        im[a] += vi;
        const double nr = cr * wr - ci * wi;
        ci = cr * wi + ci * wr;
        cr = nr;
      }
    }
  }
  if (inverse) {
    for (std::size_t i = 0; i < n; ++i) {
      re[i] /= static_cast<double>(n);
      im[i] /= static_cast<double>(n);
    }
  }
}

DensityMap FftDensity::smooth(const DensityMap& map, double sigmaWindows) {
  if (sigmaWindows <= 0.0 || map.count() == 0) return map;
  const int cols = map.cols(), rows = map.rows();
  const int radius = kernelRadius(sigmaWindows);
  const std::size_t w = nextPow2(static_cast<std::size_t>(cols + 2 * radius));
  const std::size_t h = nextPow2(static_cast<std::size_t>(rows + 2 * radius));
  const std::vector<double> num =
      convolve(map.values(), cols, rows, sigmaWindows, w, h);
  const std::vector<double> ones(
      static_cast<std::size_t>(cols) * static_cast<std::size_t>(rows), 1.0);
  const std::vector<double> den = convolve(ones, cols, rows, sigmaWindows, w, h);
  std::vector<double> out(static_cast<std::size_t>(cols) *
                          static_cast<std::size_t>(rows));
  for (int j = 0; j < rows; ++j) {
    for (int i = 0; i < cols; ++i) {
      const std::size_t src =
          static_cast<std::size_t>(j) * w + static_cast<std::size_t>(i);
      const std::size_t dst =
          static_cast<std::size_t>(j) * static_cast<std::size_t>(cols) +
          static_cast<std::size_t>(i);
      out[dst] = den[src] > 0.0 ? num[src] / den[src] : 0.0;
    }
  }
  return DensityMap(cols, rows, std::move(out));
}

DensityMap FftDensity::smoothDirect(const DensityMap& map,
                                    double sigmaWindows) {
  if (sigmaWindows <= 0.0 || map.count() == 0) return map;
  const int cols = map.cols(), rows = map.rows();
  const int radius = kernelRadius(sigmaWindows);
  std::vector<double> out(static_cast<std::size_t>(cols) *
                          static_cast<std::size_t>(rows));
  for (int j = 0; j < rows; ++j) {
    for (int i = 0; i < cols; ++i) {
      double num = 0.0, den = 0.0;
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          const int x = i + dx, y = j + dy;
          if (x < 0 || x >= cols || y < 0 || y >= rows) continue;
          const double k = kernelWeight(dx, dy, sigmaWindows);
          num += k * map.at(x, y);
          den += k;
        }
      }
      out[static_cast<std::size_t>(j) * static_cast<std::size_t>(cols) +
          static_cast<std::size_t>(i)] = den > 0.0 ? num / den : 0.0;
    }
  }
  return DensityMap(cols, rows, std::move(out));
}

}  // namespace ofl::density
