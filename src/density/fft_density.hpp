// FFT-based global density smoothing (FFTPL-style, see PAPERS.md).
//
// Convolves a per-window density map with a truncated Gaussian kernel in
// O(n log n) via zero-padded 2D FFTs, instead of the O(n * k^2) direct
// sweep. The sharded engine uses the smoothed map as a layout-wide load
// model — it balances shard boundaries and feeds the scale.* telemetry —
// computed from the same per-window wire densities the planner sees, so
// no full-layout geometry needs to stay resident. It never alters
// planning targets or fills; byte-identity with the in-memory path is
// preserved by construction.
#pragma once

#include <vector>

#include "density/density_map.hpp"

namespace ofl::density {

class FftDensity {
 public:
  /// Gaussian-smooths `map` with standard deviation `sigmaWindows`
  /// (in window units; kernel truncated at 3 sigma). Zero padding: windows
  /// outside the die contribute zero density, and the result is
  /// renormalized by the in-die kernel mass so edges are not darkened.
  /// sigmaWindows <= 0 returns the input unchanged.
  static DensityMap smooth(const DensityMap& map, double sigmaWindows);

  /// Reference direct convolution with the same kernel and edge
  /// renormalization; O(n * k^2). The equivalence test pins smooth()
  /// against it.
  static DensityMap smoothDirect(const DensityMap& map, double sigmaWindows);

  /// In-place iterative radix-2 FFT over interleaved complex values
  /// (re, im pairs; size must be a power of two). Exposed for tests.
  static void fft(std::vector<double>& re, std::vector<double>& im,
                  bool inverse);
};

}  // namespace ofl::density
