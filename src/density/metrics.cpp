#include "density/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace ofl::density {

double meanDensity(const DensityMap& map) {
  if (map.count() == 0) return 0.0;
  double sum = 0.0;
  for (double v : map.values()) sum += v;
  return sum / map.count();
}

double variation(const DensityMap& map) {
  if (map.count() == 0) return 0.0;
  const double mean = meanDensity(map);
  double ss = 0.0;
  for (double v : map.values()) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / map.count());
}

double lineHotspots(const DensityMap& map) {
  // Eqn. 1: deviation of each window from its column's mean, summed.
  double total = 0.0;
  for (int i = 0; i < map.cols(); ++i) {
    double columnSum = 0.0;
    for (int j = 0; j < map.rows(); ++j) columnSum += map.at(i, j);
    const double columnMean = map.rows() > 0 ? columnSum / map.rows() : 0.0;
    for (int j = 0; j < map.rows(); ++j) {
      total += std::abs(map.at(i, j) - columnMean);
    }
  }
  return total;
}

double outlierHotspots(const DensityMap& map) {
  // Eqn. 2: only deviation beyond the 3-sigma band counts.
  const double mean = meanDensity(map);
  const double sigma = variation(map);
  double total = 0.0;
  for (double v : map.values()) {
    total += std::max(0.0, std::abs(v - mean) - 3.0 * sigma);
  }
  return total;
}

DensityMetrics computeMetrics(const DensityMap& map) {
  DensityMetrics m;
  m.mean = meanDensity(map);
  m.sigma = variation(map);
  m.lineHotspot = lineHotspots(map);
  m.outlierHotspot = outlierHotspots(map);
  return m;
}

}  // namespace ofl::density
