// DensityMap rendering: ASCII heatmaps for terminals and CSV dumps for
// external plotting. Row 0 of the map is printed at the bottom, matching
// layout coordinates.
#pragma once

#include <string>

#include "density/density_map.hpp"

namespace ofl::density {

struct HeatmapOptions {
  /// Character ramp, dark to bright. Values are scaled into [lo, hi].
  std::string ramp = " .:-=+*#%@";
  double lo = 0.0;
  double hi = 1.0;
  /// When true, [lo, hi] autoscale to the map's min/max instead.
  bool autoscale = false;
};

/// ASCII rendering, one character per window, rows separated by newlines.
std::string renderAscii(const DensityMap& map, const HeatmapOptions& options = {});

/// CSV dump (row-major, row 0 first), one map row per line.
std::string renderCsv(const DensityMap& map);

/// Writes renderCsv to a file; false on IO failure.
bool writeCsv(const DensityMap& map, const std::string& path);

}  // namespace ofl::density
