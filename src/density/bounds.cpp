#include "density/bounds.hpp"

#include <algorithm>

#include "density/density_map.hpp"

namespace ofl::density {

WindowBound computeWindowBound(double wireDensity, geom::Area windowArea,
                               const geom::Region& fillRegion,
                               const layout::DesignRules& rules) {
  // Discard region slivers a legal fill cannot occupy: any covered
  // point must admit a minWidth x minWidth square, i.e. survive
  // erosion by floor(minWidth/2) (conservative for odd widths).
  geom::Area usable = 0;
  if (windowArea > 0) {
    const geom::Coord erode = rules.minWidth / 2;
    const geom::Region eroded = fillRegion.shrunk(erode);
    // Scale eroded area back up: erosion removes a minWidth-wide band
    // at boundaries; approximate usable area by re-dilating the area
    // estimate (cheap and conservative enough for a *bound*).
    usable = eroded.empty() ? 0 : fillRegion.area();
  }
  WindowBound bound;
  bound.lower = wireDensity;
  // The upper bound respects the foundry max-density rule unless the
  // wires alone already exceed it (the filler cannot remove wires).
  const double cap = std::max(rules.maxDensity, wireDensity);
  bound.upper =
      windowArea > 0
          ? std::min(cap, wireDensity +
                              static_cast<double>(usable) / windowArea)
          : wireDensity;
  return bound;
}

DensityBounds computeBounds(const layout::Layout& layout, int layer,
                            const layout::WindowGrid& grid,
                            const std::vector<geom::Region>& fillRegions,
                            const layout::DesignRules& rules) {
  const DensityMap wireDensity =
      DensityMap::computeFromShapes(layout.layer(layer).wires, grid);

  DensityBounds bounds;
  const auto n = static_cast<std::size_t>(grid.windowCount());
  bounds.lower.resize(n);
  bounds.upper.resize(n);

  static const geom::Region kEmptyRegion;
  for (int j = 0; j < grid.rows(); ++j) {
    for (int i = 0; i < grid.cols(); ++i) {
      const auto w = static_cast<std::size_t>(grid.flatIndex(i, j));
      const geom::Region& region =
          w < fillRegions.size() ? fillRegions[w] : kEmptyRegion;
      const WindowBound b = computeWindowBound(
          wireDensity.at(i, j), grid.windowRect(i, j).area(), region, rules);
      bounds.lower[w] = b.lower;
      bounds.upper[w] = b.upper;
    }
  }
  return bounds;
}

}  // namespace ofl::density
