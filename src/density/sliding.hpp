// Multi-window (overlapping-dissection) density analysis.
//
// Fixed dissection (paper Fig. 1) only sees windows on a w-grid; CMP
// models care about EVERY w x w window. The standard refinement (Kahng et
// al., "New multilevel and hierarchical algorithms for layout density
// control" [3]) slides the window at stride w/r: each of the r^2 phases of
// the dissection is covered, bounding the true worst window much more
// tightly. Implemented with fine tiles + 2D prefix sums, so the cost is
// one pass over the shapes plus O(#positions).
#pragma once

#include <vector>

#include "density/density_map.hpp"
#include "layout/window_grid.hpp"

namespace ofl::density {

struct SlidingDensityOptions {
  geom::Coord windowSize = 1200;
  int steps = 4;  // r: window stride is windowSize / r
};

/// Density of every sliding window position (stride windowSize/steps).
/// Result dimensions: cols = (N-1)*steps + 1 positions across, where N is
/// the fixed-dissection column count (analogously for rows); each value is
/// the density of the w x w window anchored at that stride position
/// (windows are clipped at the die edge, normalized by true area).
DensityMap computeSlidingDensity(const std::vector<geom::Rect>& shapes,
                                 const geom::Rect& die,
                                 const SlidingDensityOptions& options);

/// Convenience: max and min sliding-window density. The max-min gap is the
/// multi-window uniformity measure.
struct SlidingExtrema {
  double minDensity = 0.0;
  double maxDensity = 0.0;
};
SlidingExtrema slidingExtrema(const std::vector<geom::Rect>& shapes,
                              const geom::Rect& die,
                              const SlidingDensityOptions& options);

}  // namespace ofl::density
