#include "density/sliding.hpp"

#include <algorithm>
#include <cassert>

namespace ofl::density {

DensityMap computeSlidingDensity(const std::vector<geom::Rect>& shapes,
                                 const geom::Rect& die,
                                 const SlidingDensityOptions& options) {
  const int r = std::max(options.steps, 1);
  const geom::Coord stride = std::max<geom::Coord>(options.windowSize / r, 1);

  // Fine tiles at the stride pitch; prefix sums of their covered areas.
  const layout::WindowGrid tiles(die, stride);
  const std::vector<geom::Area> tileArea = tiles.coveredAreaPerWindow(shapes);
  const int tc = tiles.cols();
  const int tr = tiles.rows();
  // prefix[(j)(tc+1) + i] = sum of tiles with col < i, row < j.
  std::vector<geom::Area> prefix(
      static_cast<std::size_t>(tc + 1) * (tr + 1), 0);
  for (int j = 0; j < tr; ++j) {
    for (int i = 0; i < tc; ++i) {
      prefix[static_cast<std::size_t>(j + 1) * (tc + 1) + (i + 1)] =
          tileArea[static_cast<std::size_t>(tiles.flatIndex(i, j))] +
          prefix[static_cast<std::size_t>(j) * (tc + 1) + (i + 1)] +
          prefix[static_cast<std::size_t>(j + 1) * (tc + 1) + i] -
          prefix[static_cast<std::size_t>(j) * (tc + 1) + i];
    }
  }
  auto blockArea = [&prefix, tc](int i0, int j0, int i1, int j1) {
    // Sum of tiles [i0, i1) x [j0, j1).
    return prefix[static_cast<std::size_t>(j1) * (tc + 1) + i1] -
           prefix[static_cast<std::size_t>(j0) * (tc + 1) + i1] -
           prefix[static_cast<std::size_t>(j1) * (tc + 1) + i0] +
           prefix[static_cast<std::size_t>(j0) * (tc + 1) + i0];
  };

  // Window positions: anchored every stride, spanning r tiles (clipped at
  // the die edge).
  const int cols = std::max(tc - r + 1, 1);
  const int rows = std::max(tr - r + 1, 1);
  std::vector<double> values(static_cast<std::size_t>(cols) * rows);
  for (int j = 0; j < rows; ++j) {
    for (int i = 0; i < cols; ++i) {
      const int i1 = std::min(i + r, tc);
      const int j1 = std::min(j + r, tr);
      const geom::Coord xl = die.xl + i * stride;
      const geom::Coord yl = die.yl + j * stride;
      const geom::Rect window{xl, yl,
                              std::min(xl + options.windowSize, die.xh),
                              std::min(yl + options.windowSize, die.yh)};
      const geom::Area area = window.area();
      values[static_cast<std::size_t>(j) * cols + i] =
          area > 0 ? static_cast<double>(blockArea(i, j, i1, j1)) /
                         static_cast<double>(area)
                   : 0.0;
    }
  }
  return DensityMap(cols, rows, std::move(values));
}

SlidingExtrema slidingExtrema(const std::vector<geom::Rect>& shapes,
                              const geom::Rect& die,
                              const SlidingDensityOptions& options) {
  const DensityMap map = computeSlidingDensity(shapes, die, options);
  SlidingExtrema extrema;
  if (map.values().empty()) return extrema;
  extrema.minDensity = map.values()[0];
  extrema.maxDensity = map.values()[0];
  for (double v : map.values()) {
    extrema.minDensity = std::min(extrema.minDensity, v);
    extrema.maxDensity = std::max(extrema.maxDensity, v);
  }
  return extrema;
}

}  // namespace ofl::density
