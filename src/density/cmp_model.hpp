// First-order CMP topography model (effective pattern density).
//
// The paper's premise — "the quality of CMP patterns is highly related to
// the uniformity of density distribution" [1][7] — rests on the standard
// oxide-CMP model: post-polish thickness at a point is governed by the
// EFFECTIVE density, the local density convolved with a planarization
// kernel of characteristic length L (typically a few windows wide):
//
//     rho_eff = K * rho          (K: 2-D kernel, unit mass)
//     thickness ~ z0 - dz * (1 - rho_eff)   (up-areas polish faster where
//                                            effective density is low)
//
// This module computes effective-density maps with a separable Gaussian
// kernel and summarizes the predicted thickness range — the physical
// quantity the contest's sigma/hotspot scores proxy. Used by tests and
// the ablation bench to show fill insertion flattens predicted topography,
// not just the score.
#pragma once

#include "density/density_map.hpp"

namespace ofl::density {

struct CmpModelOptions {
  /// Planarization length in units of windows (kernel sigma; the kernel
  /// is truncated at 3 sigma).
  double planarizationWindows = 1.5;
  /// Nominal deposited step between full-density and empty areas, in nm.
  double stepHeightNm = 50.0;
};

/// Effective density: Gaussian-filtered window density map (same shape).
DensityMap effectiveDensity(const DensityMap& map,
                            const CmpModelOptions& options = {});

struct CmpSummary {
  double minEffective = 0.0;
  double maxEffective = 0.0;
  /// Predicted post-CMP thickness variation across the die in nm:
  /// stepHeight * (max - min) of effective density.
  double thicknessRangeNm = 0.0;
};

CmpSummary summarizeCmp(const DensityMap& map,
                        const CmpModelOptions& options = {});

}  // namespace ofl::density
