// Per-window density bounds l(i,j), u(i,j) (paper Section 3.1).
//
// Lower bound: existing wire density (fills only add area). Upper bound:
// wire density plus the fraction of the window covered by usable fill
// region. "Usable" discounts slivers narrower than the min fill width,
// which no legal fill can occupy.
#pragma once

#include <vector>

#include "geometry/region.hpp"
#include "layout/design_rules.hpp"
#include "layout/layout.hpp"
#include "layout/window_grid.hpp"

namespace ofl::density {

struct DensityBounds {
  std::vector<double> lower;  // l(i,j), flat-indexed
  std::vector<double> upper;  // u(i,j)
};

/// One window's [lower, upper] pair.
struct WindowBound {
  double lower = 0.0;
  double upper = 0.0;
};

/// Bound arithmetic for a single window: `wireDensity` is the window's
/// wire-only density, `windowArea` its true (edge-clipped) area,
/// `fillRegion` its free space. Both computeBounds and the sharded
/// engine's row-at-a-time pass call this, so the two paths agree by
/// construction.
WindowBound computeWindowBound(double wireDensity, geom::Area windowArea,
                               const geom::Region& fillRegion,
                               const layout::DesignRules& rules);

/// Bounds for one layer given its per-window fill regions (from
/// layout::computeFillRegions).
DensityBounds computeBounds(const layout::Layout& layout, int layer,
                            const layout::WindowGrid& grid,
                            const std::vector<geom::Region>& fillRegions,
                            const layout::DesignRules& rules);

}  // namespace ofl::density
