// Per-window density bounds l(i,j), u(i,j) (paper Section 3.1).
//
// Lower bound: existing wire density (fills only add area). Upper bound:
// wire density plus the fraction of the window covered by usable fill
// region. "Usable" discounts slivers narrower than the min fill width,
// which no legal fill can occupy.
#pragma once

#include <vector>

#include "geometry/region.hpp"
#include "layout/design_rules.hpp"
#include "layout/layout.hpp"
#include "layout/window_grid.hpp"

namespace ofl::density {

struct DensityBounds {
  std::vector<double> lower;  // l(i,j), flat-indexed
  std::vector<double> upper;  // u(i,j)
};

/// Bounds for one layer given its per-window fill regions (from
/// layout::computeFillRegions).
DensityBounds computeBounds(const layout::Layout& layout, int layer,
                            const layout::WindowGrid& grid,
                            const std::vector<geom::Region>& fillRegions,
                            const layout::DesignRules& rules);

}  // namespace ofl::density
