#include "density/cmp_model.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ofl::density {
namespace {

// Normalized 1-D Gaussian taps, truncated at 3 sigma.
std::vector<double> gaussianKernel(double sigma) {
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
  std::vector<double> taps(static_cast<std::size_t>(2 * radius + 1));
  double sum = 0.0;
  for (int k = -radius; k <= radius; ++k) {
    const double v = std::exp(-0.5 * (k / sigma) * (k / sigma));
    taps[static_cast<std::size_t>(k + radius)] = v;
    sum += v;
  }
  for (double& v : taps) v /= sum;
  return taps;
}

// 1-D convolution along one axis with border clamping (the die edge sees
// its own density continued, the usual boundary treatment for CMP models).
DensityMap convolveAxis(const DensityMap& map, const std::vector<double>& taps,
                        bool alongX) {
  const int radius = static_cast<int>(taps.size() / 2);
  std::vector<double> out(map.values().size());
  for (int j = 0; j < map.rows(); ++j) {
    for (int i = 0; i < map.cols(); ++i) {
      double acc = 0.0;
      for (int k = -radius; k <= radius; ++k) {
        const int ii = alongX ? std::clamp(i + k, 0, map.cols() - 1) : i;
        const int jj = alongX ? j : std::clamp(j + k, 0, map.rows() - 1);
        acc += taps[static_cast<std::size_t>(k + radius)] * map.at(ii, jj);
      }
      out[static_cast<std::size_t>(j * map.cols() + i)] = acc;
    }
  }
  return DensityMap(map.cols(), map.rows(), std::move(out));
}

}  // namespace

DensityMap effectiveDensity(const DensityMap& map,
                            const CmpModelOptions& options) {
  if (map.count() == 0) return map;
  const double sigma = std::max(options.planarizationWindows, 1e-6);
  const std::vector<double> taps = gaussianKernel(sigma);
  // Separable 2-D Gaussian: X pass then Y pass.
  return convolveAxis(convolveAxis(map, taps, /*alongX=*/true), taps,
                      /*alongX=*/false);
}

CmpSummary summarizeCmp(const DensityMap& map, const CmpModelOptions& options) {
  CmpSummary summary;
  if (map.count() == 0) return summary;
  const DensityMap eff = effectiveDensity(map, options);
  summary.minEffective = eff.values()[0];
  summary.maxEffective = eff.values()[0];
  for (const double v : eff.values()) {
    summary.minEffective = std::min(summary.minEffective, v);
    summary.maxEffective = std::max(summary.maxEffective, v);
  }
  summary.thicknessRangeNm =
      options.stepHeightNm * (summary.maxEffective - summary.minEffective);
  return summary;
}

}  // namespace ofl::density
