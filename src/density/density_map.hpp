// Per-window layout density for one layer (paper Section 2.2).
//
// d(i, j) = covered area of (wires U fills) clipped to window (i, j),
// divided by the window area. Stored column-major-agnostic as a flat
// vector indexed by WindowGrid::flatIndex.
#pragma once

#include <vector>

#include "layout/layout.hpp"
#include "layout/window_grid.hpp"

namespace ofl::density {

class DensityMap {
 public:
  DensityMap() = default;
  DensityMap(int cols, int rows, std::vector<double> values);

  /// Densities of wires+fills of `layer` under `grid`.
  static DensityMap compute(const layout::Layout& layout, int layer,
                            const layout::WindowGrid& grid);

  /// Densities of an explicit shape list (e.g. wires only).
  static DensityMap computeFromShapes(const std::vector<geom::Rect>& shapes,
                                      const layout::WindowGrid& grid);

  int cols() const { return cols_; }
  int rows() const { return rows_; }
  int count() const { return cols_ * rows_; }

  double at(int i, int j) const {
    return values_[static_cast<std::size_t>(j * cols_ + i)];
  }
  double& at(int i, int j) {
    return values_[static_cast<std::size_t>(j * cols_ + i)];
  }
  const std::vector<double>& values() const { return values_; }

 private:
  int cols_ = 0;
  int rows_ = 0;
  std::vector<double> values_;
};

}  // namespace ofl::density
