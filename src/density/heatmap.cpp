#include "density/heatmap.hpp"

#include <algorithm>
#include <cstdio>

namespace ofl::density {

std::string renderAscii(const DensityMap& map, const HeatmapOptions& options) {
  if (map.count() == 0 || options.ramp.empty()) return "";
  double lo = options.lo;
  double hi = options.hi;
  if (options.autoscale) {
    lo = map.values()[0];
    hi = map.values()[0];
    for (const double v : map.values()) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const double span = hi > lo ? hi - lo : 1.0;
  std::string out;
  out.reserve(static_cast<std::size_t>(map.count()) + map.rows());
  for (int j = map.rows() - 1; j >= 0; --j) {
    for (int i = 0; i < map.cols(); ++i) {
      const double t = std::clamp((map.at(i, j) - lo) / span, 0.0, 1.0);
      const auto idx = std::min(
          options.ramp.size() - 1,
          static_cast<std::size_t>(t * static_cast<double>(options.ramp.size())));
      out += options.ramp[idx];
    }
    out += '\n';
  }
  return out;
}

std::string renderCsv(const DensityMap& map) {
  std::string out;
  char buf[48];
  for (int j = 0; j < map.rows(); ++j) {
    for (int i = 0; i < map.cols(); ++i) {
      std::snprintf(buf, sizeof(buf), "%.6f%s", map.at(i, j),
                    i + 1 < map.cols() ? "," : "\n");
      out += buf;
    }
  }
  return out;
}

bool writeCsv(const DensityMap& map, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string csv = renderCsv(map);
  const std::size_t written = std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
  return written == csv.size();
}

}  // namespace ofl::density
