#include "density/density_map.hpp"

#include <cassert>

namespace ofl::density {

DensityMap::DensityMap(int cols, int rows, std::vector<double> values)
    : cols_(cols), rows_(rows), values_(std::move(values)) {
  assert(values_.size() == static_cast<std::size_t>(cols_) * rows_);
}

DensityMap DensityMap::compute(const layout::Layout& layout, int layer,
                               const layout::WindowGrid& grid) {
  std::vector<geom::Rect> shapes = layout.layer(layer).wires;
  const auto& fills = layout.layer(layer).fills;
  shapes.insert(shapes.end(), fills.begin(), fills.end());
  return computeFromShapes(shapes, grid);
}

DensityMap DensityMap::computeFromShapes(const std::vector<geom::Rect>& shapes,
                                         const layout::WindowGrid& grid) {
  const std::vector<geom::Area> covered = grid.coveredAreaPerWindow(shapes);
  std::vector<double> values(covered.size(), 0.0);
  for (int j = 0; j < grid.rows(); ++j) {
    for (int i = 0; i < grid.cols(); ++i) {
      const auto w = static_cast<std::size_t>(grid.flatIndex(i, j));
      const geom::Area windowArea = grid.windowRect(i, j).area();
      values[w] = windowArea > 0
                      ? static_cast<double>(covered[w]) / windowArea
                      : 0.0;
    }
  }
  return DensityMap(grid.cols(), grid.rows(), std::move(values));
}

}  // namespace ofl::density
