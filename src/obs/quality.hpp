// Quality-telemetry channel (docs/architecture.md, "Observability").
//
// The score of a run is decided by a handful of per-window distribution
// statistics (paper Eqns. 1-4): density variation sigma, line/outlier
// hotspots, fill-induced overlay and the per-term contest score. This
// channel records those into the SAME metrics registry and trace stream
// as the latency data, so "which window/layer hurt the score" is
// answerable from one run artifact without re-running the verify oracles.
//
// All entry points take plain doubles: the callers (FillEngine, the CLI
// evaluator path) own the density/score types, keeping obs at the bottom
// of the dependency graph. Every function is a no-op unless metrics
// collection is enabled; layer indices are 1-based to match report and
// GDS conventions.
#pragma once

#include <cstdint>

namespace ofl::obs {

/// Per-layer post-fill density distribution: gauges
/// quality.layer<L>.{mean,sigma,line,outlier} plus a "quality" instant
/// trace event carrying the same values for the timeline view.
void recordLayerQuality(int layer, double mean, double sigma, double line,
                        double outlier, std::int64_t jobId = -1);

/// Per-window final density and |density - planned target| gap:
/// histograms quality.layer<L>.window_density and quality.density_gap,
/// plus counters quality.windows and quality.gap_windows (gap > 0.01).
void recordWindowQuality(int layer, double density, double targetGap);

/// Per-term contest score decomposition (Eqns. 3-4): gauges
/// score.{overlay,variation,line,outlier,size,quality,total}.
void recordScoreTerms(double overlay, double variation, double line,
                      double outlier, double size, double quality,
                      double total);

}  // namespace ofl::obs
