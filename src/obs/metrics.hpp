// Unified metrics registry (docs/architecture.md, "Observability").
//
// One process-global table of named counters, gauges and fixed-bucket
// histograms that absorbs every stat the system previously scattered —
// the prof stage timers, ServiceStats, ResultCache hit/miss/eviction
// counts, peak RSS — plus the quality-telemetry channel (per-layer /
// per-window density, hotspot counts, score terms). Snapshots export as
// JSON (`--metrics-out FILE`) and Prometheus text exposition
// (`--metrics-prom FILE`); `openfill stats --metrics FILE` pretty-prints
// a snapshot.
//
// Concurrency & lifetime contract: series are created on first use under
// a mutex and NEVER destroyed — reset() zeroes values in place — so
// instrumentation sites may cache `static Counter& c = ...` references.
// Updates are relaxed atomics; collection is OFF by default and every
// gated site pays one relaxed load.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ofl::prof {
struct Snapshot;
}

namespace ofl::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// with an implicit +Inf bucket at the end. Quantiles (p50/p95/p99) are
/// estimated by linear interpolation inside the owning bucket — exact
/// enough for latency/size/density distributions over fixed buckets.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;        // upper bounds, ascending
    std::vector<std::uint64_t> counts; // bounds.size() + 1 (last = +Inf)
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // observed extrema (0 when empty)
    double max = 0.0;

    double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    /// q in [0, 1]; returns 0 when empty.
    double quantile(double q) const;
  };
  Snapshot snapshot() const;
  void reset();

  /// Exponential seconds buckets, 100us .. 5min — queue waits, solves,
  /// whole runs.
  static std::vector<double> latencyBounds();
  /// Linear [0, 1] buckets in 0.05 steps — densities and ratios.
  static std::vector<double> unitBounds();

 private:
  const std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Extrema start at the identity for min/max; snapshot() reports 0 for
  // both while the histogram is empty.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

struct MetricsSnapshot {
  struct HistogramData {
    Histogram::Snapshot data;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  bool has(const std::string& name) const;
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} — schema in
  /// docs/architecture.md; parsed back by `openfill stats --metrics`.
  std::string json() const;
  /// Prometheus text exposition format (metric names sanitized and
  /// prefixed "openfill_").
  std::string prometheus() const;
  /// Aligned human-readable rendering (openfill stats --metrics).
  std::string human() const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Global collection switch for *instrumentation sites* (the registry
  /// itself always works): sites gate expensive recording on enabled().
  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  static bool enabled() {
    return instance().enabled_.load(std::memory_order_relaxed);
  }

  /// Find-or-create. Returned references stay valid for the process
  /// lifetime. A histogram's bounds are fixed by its first creation.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = Histogram::latencyBounds());

  /// Zeroes every registered series in place (addresses stay valid).
  void reset();
  MetricsSnapshot snapshot() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Convenience: MetricsRegistry::enabled().
inline bool metricsEnabled() { return MetricsRegistry::enabled(); }

/// Folds a prof registry snapshot into the metrics registry as gauges
/// ("prof.<stage>.seconds", "prof.<stage>.calls", "prof.<counter>").
void absorbProf(const prof::Snapshot& snapshot);

/// Pre-registers the cross-subsystem series (engine, cache, scheduler,
/// service, process) so every snapshot carries the full schema with
/// zero values even when a run never exercises a subsystem — a lone
/// `fill` still exports cache.* and sched.* series a scrape can rely on.
void registerCoreSeries();

/// Refreshes "process.peak_rss_mib" / "process.rss_mib" gauges.
void updateProcessGauges();

}  // namespace ofl::obs
