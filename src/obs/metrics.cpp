#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/json_util.hpp"
#include "common/memory_usage.hpp"
#include "common/prof.hpp"

namespace ofl::obs {

namespace {

// Relaxed CAS add/min/max for atomic<double> (no fetch_add for doubles).
void atomicAdd(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}
void atomicMin(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
void atomicMax(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomicAdd(sum_, v);
  atomicMin(min_, v);
  atomicMax(max_, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    s.counts.push_back(c.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t inBucket = counts[i];
    if (inBucket == 0) continue;
    if (static_cast<double>(cumulative + inBucket) >= rank) {
      // Interpolate inside bucket i. Bucket range: (lo, hi] where lo is
      // the previous bound (or the observed min for the first used
      // bucket) and hi the bound (or observed max for the +Inf bucket).
      const double lo = i == 0 ? min : bounds[i - 1];
      const double hi = i < bounds.size() ? std::min(bounds[i], max) : max;
      const double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(inBucket);
      return lo + (std::max(hi, lo) - lo) * std::clamp(within, 0.0, 1.0);
    }
    cumulative += inBucket;
  }
  return max;
}

std::vector<double> Histogram::latencyBounds() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
          5e-2, 0.1,    0.25, 0.5,  1.0,    2.5,  5.0,  10.0,
          30.0, 60.0,   120.0, 300.0};
}

std::vector<double> Histogram::unitBounds() {
  std::vector<double> bounds;
  bounds.reserve(20);
  for (int i = 1; i <= 20; ++i) bounds.push_back(0.05 * i);
  return bounds;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData d;
    d.data = h->snapshot();
    d.p50 = d.data.quantile(0.50);
    d.p95 = d.data.quantile(0.95);
    d.p99 = d.data.quantile(0.99);
    s.histograms[name] = std::move(d);
  }
  return s;
}

bool MetricsSnapshot::has(const std::string& name) const {
  return counters.count(name) != 0 || gauges.count(name) != 0 ||
         histograms.count(name) != 0;
}

std::string MetricsSnapshot::json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n    \"" : ",\n    \"";
    first = false;
    json::appendEscaped(out, name);
    out += "\": ";
    json::appendNumber(out, v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n    \"" : ",\n    \"";
    first = false;
    json::appendEscaped(out, name);
    out += "\": ";
    json::appendNumber(out, v);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n    \"" : ",\n    \"";
    first = false;
    json::appendEscaped(out, name);
    out += "\": {\"count\": ";
    json::appendNumber(out, h.data.count);
    out += ", \"sum\": ";
    json::appendNumber(out, h.data.sum);
    out += ", \"min\": ";
    json::appendNumber(out, h.data.min);
    out += ", \"max\": ";
    json::appendNumber(out, h.data.max);
    out += ", \"p50\": ";
    json::appendNumber(out, h.p50);
    out += ", \"p95\": ";
    json::appendNumber(out, h.p95);
    out += ", \"p99\": ";
    json::appendNumber(out, h.p99);
    out += ",\n      \"bounds\": [";
    for (std::size_t i = 0; i < h.data.bounds.size(); ++i) {
      if (i > 0) out += ", ";
      json::appendNumber(out, h.data.bounds[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.data.counts.size(); ++i) {
      if (i > 0) out += ", ";
      json::appendNumber(out, h.data.counts[i]);
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

namespace {

// Prometheus metric name: [a-zA-Z0-9_] only, "openfill_" prefix.
std::string promName(const std::string& name) {
  std::string out = "openfill_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::prometheus() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    const std::string p = promName(name) + "_total";
    out += "# TYPE " + p + " counter\n" + p + " ";
    json::appendNumber(out, v);
    out += "\n";
  }
  for (const auto& [name, v] : gauges) {
    const std::string p = promName(name);
    out += "# TYPE " + p + " gauge\n" + p + " ";
    json::appendNumber(out, v);
    out += "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string p = promName(name);
    out += "# TYPE " + p + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.data.counts.size(); ++i) {
      cumulative += h.data.counts[i];
      out += p + "_bucket{le=\"";
      if (i < h.data.bounds.size()) {
        json::appendNumber(out, h.data.bounds[i]);
      } else {
        out += "+Inf";
      }
      out += "\"} ";
      json::appendNumber(out, cumulative);
      out += "\n";
    }
    out += p + "_sum ";
    json::appendNumber(out, h.data.sum);
    out += "\n" + p + "_count ";
    json::appendNumber(out, h.data.count);
    out += "\n";
  }
  return out;
}

std::string MetricsSnapshot::human() const {
  std::string out;
  char line[192];
  if (!counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, v] : counters) {
      std::snprintf(line, sizeof(line), "  %-36s %14llu\n", name.c_str(),
                    static_cast<unsigned long long>(v));
      out += line;
    }
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, v] : gauges) {
      std::snprintf(line, sizeof(line), "  %-36s %14.6g\n", name.c_str(), v);
      out += line;
    }
  }
  if (!histograms.empty()) {
    std::snprintf(line, sizeof(line), "%-38s %10s %12s %12s %12s %12s\n",
                  "histogram", "count", "mean", "p50", "p95", "p99");
    out += line;
    for (const auto& [name, h] : histograms) {
      std::snprintf(line, sizeof(line),
                    "  %-36s %10llu %12.6g %12.6g %12.6g %12.6g\n",
                    name.c_str(),
                    static_cast<unsigned long long>(h.data.count),
                    h.data.mean(), h.p50, h.p95, h.p99);
      out += line;
    }
  }
  return out;
}

void absorbProf(const prof::Snapshot& snapshot) {
  MetricsRegistry& reg = MetricsRegistry::instance();
  for (int i = 0; i < static_cast<int>(prof::Stage::kCount); ++i) {
    const auto stage = static_cast<prof::Stage>(i);
    const prof::StageStats& s = snapshot.stage(stage);
    if (s.calls == 0) continue;
    // Stage names indent nested kernels with spaces; strip for the key.
    std::string key;
    for (const char* p = prof::stageName(stage); *p != '\0'; ++p) {
      if (*p != ' ') key.push_back(*p);
    }
    reg.gauge("prof." + key + ".seconds").set(s.seconds());
    reg.gauge("prof." + key + ".calls").set(static_cast<double>(s.calls));
  }
  for (int i = 0; i < static_cast<int>(prof::Counter::kCount); ++i) {
    const auto counter = static_cast<prof::Counter>(i);
    const std::uint64_t v = snapshot.counter(counter);
    if (v == 0) continue;
    reg.gauge(std::string("prof.") + prof::counterName(counter))
        .set(static_cast<double>(v));
  }
}

void updateProcessGauges() {
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.gauge("process.peak_rss_mib").set(peakMemoryMiB());
  reg.gauge("process.rss_mib").set(currentMemoryMiB());
}

void registerCoreSeries() {
  MetricsRegistry& reg = MetricsRegistry::instance();
  for (const char* name :
       {"engine.runs", "engine.windows", "engine.candidates", "engine.fills",
        "engine.mcf_warm_starts", "engine.mcf_early_exits",
        "engine.eco_windows_skipped",
        "scale.runs", "scale.shards", "scale.spill_bytes", "scale.spill_events",
        "cache.hits", "cache.misses", "cache.evictions",
        "sched.tasks_submitted", "sched.tasks_completed",
        "service.jobs_submitted", "service.jobs_completed",
        "service.jobs_failed", "quality.windows", "quality.gap_windows"}) {
    reg.counter(name);
  }
  for (const char* name :
       {"cache.bytes_used", "cache.entries", "sched.queue_depth",
        "process.peak_rss_mib", "process.rss_mib", "scale.rows",
        "scale.mem_budget_mib", "fill.peak_rss_mib", "fill.seconds",
        "fill.output_bytes"}) {
    reg.gauge(name);
  }
  for (const char* name : {"engine.run_seconds", "job.queue_seconds",
                           "job.run_seconds", "sched.queue_wait_seconds",
                           "scale.ingest_seconds", "scale.fft_seconds"}) {
    reg.histogram(name);
  }
  reg.histogram("quality.density_gap", Histogram::unitBounds());
}

}  // namespace ofl::obs
