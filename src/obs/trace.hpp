// Span-based tracer emitting Chrome trace-event JSON (docs/architecture.md,
// "Observability").
//
// Collection is OFF by default: every probe site pays one relaxed atomic
// load and nothing else, so spans stay in per-window and per-lookup code
// permanently. When enabled, each thread appends fixed-size events to its
// own buffer (registered once under a mutex, then touched only by the
// owning thread plus the collector), so concurrent workers never contend.
// Names, categories and argument keys must be string literals — events
// store the pointers, never copies.
//
// The output (`Tracer::writeChromeJson`, CLI `--trace FILE`) is the Chrome
// trace-event "complete event" format: load it in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Cross-thread correlation
// uses span args — every engine/service span carries the owning job id —
// rather than flow events, which keeps the writer trivial.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ofl::obs {

/// One span/instant event. Fixed-size on purpose: recording must never
/// allocate on the hot path.
struct TraceEvent {
  static constexpr int kMaxArgs = 3;

  const char* name = nullptr;  // literal
  const char* cat = "";        // literal: engine, window, sched, cache, ...
  std::uint64_t startNs = 0;   // relative to the tracer epoch
  std::uint64_t durNs = 0;
  char phase = 'X';  // 'X' complete, 'i' instant
  int argCount = 0;
  const char* argKeys[kMaxArgs] = {nullptr, nullptr, nullptr};  // literals
  double argValues[kMaxArgs] = {0, 0, 0};
};

/// A named arg attached to a span ({"job", 3}). Values are doubles: ids,
/// indices and quality telemetry all fit.
using SpanArg = std::pair<const char*, double>;

class Tracer {
 public:
  static Tracer& instance();

  /// Global collection switch; enabling does not clear prior events.
  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  static bool enabled() {
    return instance().enabled_.load(std::memory_order_relaxed);
  }

  /// Drops every recorded event (thread buffers stay registered).
  void clear();

  /// Nanoseconds since the tracer epoch (process start).
  std::uint64_t nowNs() const;
  /// Converts an externally captured steady_clock point (e.g. a job's
  /// submit time) to epoch-relative nanoseconds, clamped at 0.
  std::uint64_t toEpochNs(std::chrono::steady_clock::time_point t) const;

  /// Appends to the calling thread's buffer. Callers must check enabled()
  /// first (ScopedSpan and the free helpers below do).
  void record(const TraceEvent& event);

  /// Number of events across all thread buffers.
  std::size_t eventCount() const;
  /// Events with their recording thread's stable id, in per-thread order.
  struct CollectedEvent {
    TraceEvent event;
    int tid = 0;
  };
  std::vector<CollectedEvent> collect() const;

  /// Renders {"traceEvents": [...]} (Chrome/Perfetto loadable).
  std::string chromeJson() const;
  bool writeChromeJson(const std::string& path) const;

 private:
  struct ThreadBuffer {
    std::mutex mutex;  // owner appends, collector copies; never contended
    int tid = 0;
    std::vector<TraceEvent> events;
  };

  Tracer();
  ThreadBuffer& localBuffer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex registryMutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/// RAII complete-span probe. A no-op (no clock reads, no buffer touch)
/// while the tracer is disabled; the enabled state is latched at
/// construction so a span closes consistently even if tracing toggles
/// mid-flight.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "engine")
      : armed_(Tracer::enabled()) {
    if (armed_) {
      event_.name = name;
      event_.cat = cat;
      event_.startNs = Tracer::instance().nowNs();
    }
  }
  ScopedSpan(const char* name, const char* cat,
             std::initializer_list<SpanArg> args)
      : ScopedSpan(name, cat) {
    if (armed_) {
      for (const SpanArg& a : args) {
        if (event_.argCount >= TraceEvent::kMaxArgs) break;
        event_.argKeys[event_.argCount] = a.first;
        event_.argValues[event_.argCount] = a.second;
        ++event_.argCount;
      }
    }
  }
  ~ScopedSpan() {
    if (armed_) {
      Tracer& tracer = Tracer::instance();
      event_.durNs = tracer.nowNs() - event_.startNs;
      tracer.record(event_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool armed_;
  TraceEvent event_{};
};

/// Records a complete span after the fact (e.g. queue-wait measured when
/// the item is finally picked up). No-op while disabled.
void completeSpan(const char* name, const char* cat, std::uint64_t startNs,
                  std::uint64_t durNs, std::initializer_list<SpanArg> args);

/// Records an instant event ("i" phase). No-op while disabled.
void instant(const char* name, const char* cat,
             std::initializer_list<SpanArg> args);

}  // namespace ofl::obs
