#include "obs/quality.hpp"

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ofl::obs {

namespace {

std::string layerPrefix(int layer) {
  return "quality.layer" + std::to_string(layer) + ".";
}

}  // namespace

void recordLayerQuality(int layer, double mean, double sigma, double line,
                        double outlier, std::int64_t jobId) {
  if (metricsEnabled()) {
    MetricsRegistry& reg = MetricsRegistry::instance();
    const std::string prefix = layerPrefix(layer);
    reg.gauge(prefix + "mean").set(mean);
    reg.gauge(prefix + "sigma").set(sigma);
    reg.gauge(prefix + "line").set(line);
    reg.gauge(prefix + "outlier").set(outlier);
  }
  instant("quality.layer", "quality",
          {{"layer", static_cast<double>(layer)},
           {"sigma", sigma},
           {"job", static_cast<double>(jobId)}});
}

void recordWindowQuality(int layer, double density, double targetGap) {
  if (!metricsEnabled()) return;
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.histogram(layerPrefix(layer) + "window_density",
                Histogram::unitBounds())
      .observe(density);
  reg.histogram("quality.density_gap", Histogram::unitBounds())
      .observe(targetGap);
  reg.counter("quality.windows").add();
  if (targetGap > 0.01) reg.counter("quality.gap_windows").add();
}

void recordScoreTerms(double overlay, double variation, double line,
                      double outlier, double size, double quality,
                      double total) {
  if (!metricsEnabled()) return;
  MetricsRegistry& reg = MetricsRegistry::instance();
  reg.gauge("score.overlay").set(overlay);
  reg.gauge("score.variation").set(variation);
  reg.gauge("score.line").set(line);
  reg.gauge("score.outlier").set(outlier);
  reg.gauge("score.size").set(size);
  reg.gauge("score.quality").set(quality);
  reg.gauge("score.total").set(total);
}

}  // namespace ofl::obs
