#include "obs/trace.hpp"

#include <cstdio>

#include "common/json_util.hpp"

namespace ofl::obs {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::nowNs() const {
  return toEpochNs(std::chrono::steady_clock::now());
}

std::uint64_t Tracer::toEpochNs(
    std::chrono::steady_clock::time_point t) const {
  if (t <= epoch_) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch_)
          .count());
}

Tracer::ThreadBuffer& Tracer::localBuffer() {
  // One buffer per thread per process lifetime. The shared_ptr keeps the
  // buffer alive in the registry after the thread exits (pool threads die
  // with their pool; their events must survive until the trace is
  // written).
  thread_local std::shared_ptr<ThreadBuffer> local = [this] {
    auto buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(registryMutex_);
    buffer->tid = static_cast<int>(buffers_.size()) + 1;
    buffers_.push_back(buffer);
    return buffer;
  }();
  return *local;
}

void Tracer::record(const TraceEvent& event) {
  ThreadBuffer& buffer = localBuffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(event);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(registryMutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> bufferLock(buffer->mutex);
    buffer->events.clear();
  }
}

std::size_t Tracer::eventCount() const {
  std::lock_guard<std::mutex> lock(registryMutex_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> bufferLock(buffer->mutex);
    n += buffer->events.size();
  }
  return n;
}

std::vector<Tracer::CollectedEvent> Tracer::collect() const {
  std::vector<CollectedEvent> out;
  std::lock_guard<std::mutex> lock(registryMutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> bufferLock(buffer->mutex);
    out.reserve(out.size() + buffer->events.size());
    for (const TraceEvent& e : buffer->events) {
      out.push_back(CollectedEvent{e, buffer->tid});
    }
  }
  return out;
}

namespace {

// Chrome trace timestamps are microseconds; keep nanosecond precision as
// a fractional part.
void appendMicros(std::string& out, std::uint64_t ns) {
  json::appendNumber(out, ns / 1000);
  out.push_back('.');
  const std::uint64_t frac = ns % 1000;
  out.push_back(static_cast<char>('0' + frac / 100));
  out.push_back(static_cast<char>('0' + frac / 10 % 10));
  out.push_back(static_cast<char>('0' + frac % 10));
}

}  // namespace

std::string Tracer::chromeJson() const {
  const std::vector<CollectedEvent> events = collect();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const CollectedEvent& ce : events) {
    const TraceEvent& e = ce.event;
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    json::appendEscaped(out, e.name != nullptr ? e.name : "?");
    out += "\",\"cat\":\"";
    json::appendEscaped(out, e.cat);
    out += "\",\"ph\":\"";
    out.push_back(e.phase);
    out += "\",\"pid\":1,\"tid\":";
    json::appendNumber(out, static_cast<std::int64_t>(ce.tid));
    out += ",\"ts\":";
    appendMicros(out, e.startNs);
    if (e.phase == 'X') {
      out += ",\"dur\":";
      appendMicros(out, e.durNs);
    }
    if (e.phase == 'i') out += ",\"s\":\"t\"";  // instant scope: thread
    if (e.argCount > 0) {
      out += ",\"args\":{";
      for (int i = 0; i < e.argCount; ++i) {
        if (i > 0) out += ",";
        out += "\"";
        json::appendEscaped(out, e.argKeys[i]);
        out += "\":";
        json::appendNumber(out, e.argValues[i]);
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Tracer::writeChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = chromeJson();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

void completeSpan(const char* name, const char* cat, std::uint64_t startNs,
                  std::uint64_t durNs, std::initializer_list<SpanArg> args) {
  if (!Tracer::enabled()) return;
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.startNs = startNs;
  e.durNs = durNs;
  for (const SpanArg& a : args) {
    if (e.argCount >= TraceEvent::kMaxArgs) break;
    e.argKeys[e.argCount] = a.first;
    e.argValues[e.argCount] = a.second;
    ++e.argCount;
  }
  Tracer::instance().record(e);
}

void instant(const char* name, const char* cat,
             std::initializer_list<SpanArg> args) {
  if (!Tracer::enabled()) return;
  TraceEvent e;
  e.phase = 'i';
  e.name = name;
  e.cat = cat;
  e.startNs = Tracer::instance().nowNs();
  for (const SpanArg& a : args) {
    if (e.argCount >= TraceEvent::kMaxArgs) break;
    e.argKeys[e.argCount] = a.first;
    e.argValues[e.argCount] = a.second;
    ++e.argCount;
  }
  Tracer::instance().record(e);
}

}  // namespace ofl::obs
