// Power-user example: drive the three fill stages by hand instead of
// through FillEngine — useful when embedding OpenFill in a larger flow
// that wants to veto or post-process individual stages.
//
// The stages mirror the paper's Fig. 3:
//   1. fill regions + density bounds          (layout/, density/)
//   2. target density planning                 (fill::TargetDensityPlanner)
//   3. candidate generation per window         (fill::CandidateGenerator)
//   4. fill sizing per window (dual MCF)       (fill::FillSizer)
#include <cstdio>

#include "common/logging.hpp"
#include "contest/benchmark_generator.hpp"
#include "density/bounds.hpp"
#include "density/density_map.hpp"
#include "fill/candidate_generator.hpp"
#include "fill/fill_sizer.hpp"
#include "fill/target_planner.hpp"
#include "layout/fill_region.hpp"

using namespace ofl;

int main() {
  setLogLevel(LogLevel::kWarn);
  const contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec("tiny");
  layout::Layout chip = contest::BenchmarkGenerator::generate(spec);
  const layout::WindowGrid grid(chip.die(), spec.windowSize);
  const int numLayers = chip.numLayers();

  // --- Stage 1: fill regions and density bounds per layer ---
  std::vector<std::vector<geom::Region>> regions;
  std::vector<density::DensityBounds> bounds;
  for (int l = 0; l < numLayers; ++l) {
    regions.push_back(layout::computeFillRegions(chip, l, grid, spec.rules));
    bounds.push_back(
        density::computeBounds(chip, l, grid, regions.back(), spec.rules));
  }

  // --- Stage 2: one target density per layer ---
  const fill::TargetDensityPlanner planner(fill::PlannerWeights{});
  const fill::TargetPlan plan = planner.plan(bounds, grid.cols(), grid.rows());
  for (int l = 0; l < numLayers; ++l) {
    std::printf("layer %d target density: %.3f\n", l + 1,
                plan.layerTarget[static_cast<std::size_t>(l)]);
  }

  // --- Stages 3+4, window by window ---
  std::vector<std::vector<std::vector<geom::Rect>>> wireBuckets;
  std::vector<density::DensityMap> wireDensity;
  for (int l = 0; l < numLayers; ++l) {
    wireBuckets.push_back(grid.bucketClipped(chip.layer(l).wires));
    wireDensity.push_back(
        density::DensityMap::computeFromShapes(chip.layer(l).wires, grid));
  }
  const fill::CandidateGenerator generator(spec.rules, {});
  const fill::FillSizer sizer(spec.rules, {});
  fill::FillSizer::Stats stats;
  std::size_t totalFills = 0;
  for (int j = 0; j < grid.rows(); ++j) {
    for (int i = 0; i < grid.cols(); ++i) {
      const auto w = static_cast<std::size_t>(grid.flatIndex(i, j));
      fill::WindowProblem problem;
      problem.window = grid.windowRect(i, j);
      for (int l = 0; l < numLayers; ++l) {
        problem.fillRegions.push_back(regions[static_cast<std::size_t>(l)][w]);
        problem.wires.push_back(wireBuckets[static_cast<std::size_t>(l)][w]);
        problem.wireDensity.push_back(
            wireDensity[static_cast<std::size_t>(l)].values()[w]);
        problem.targetDensity.push_back(
            plan.windowTarget[static_cast<std::size_t>(l)][w]);
      }
      generator.generate(problem);
      sizer.size(problem, &stats);
      for (int l = 0; l < numLayers; ++l) {
        auto& fills = chip.layer(l).fills;
        const auto& add = problem.fills[static_cast<std::size_t>(l)];
        fills.insert(fills.end(), add.begin(), add.end());
        totalFills += add.size();
      }
    }
  }
  std::printf("inserted %zu fills via the stage-by-stage API "
              "(%lld LP solves, %lld spacing repairs)\n",
              totalFills, stats.solves, stats.spacingConstraints);
  return 0;
}
