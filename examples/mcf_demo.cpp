// Reproduces the paper's Fig. 6 worked example through the public
// DifferentialLp API:
//
//   min  x1 + 2 x2 + 3 x3 + 4 x4
//   s.t. x1 - x2 >= 5,  x4 - x3 >= 6,  0 <= xi <= 10, x integral
//
// Expected solution (paper Section 3.3.3): x = (5, 0, 0, 6).
#include <cstdio>

#include "mcf/dual_lp.hpp"

using namespace ofl::mcf;

int main() {
  DifferentialLp lp;
  const int x1 = lp.addVariable(1, 0, 10);
  const int x2 = lp.addVariable(2, 0, 10);
  const int x3 = lp.addVariable(3, 0, 10);
  const int x4 = lp.addVariable(4, 0, 10);
  lp.addConstraint(x1, x2, 5);
  lp.addConstraint(x4, x3, 6);

  for (const auto& [backend, name] :
       {std::pair{McfBackend::kNetworkSimplex, "network-simplex"},
        std::pair{McfBackend::kSuccessiveShortestPath, "ssp"},
        std::pair{McfBackend::kCycleCanceling, "cycle-canceling"}}) {
    const DiffLpResult r = DifferentialLpSolver(backend).solve(lp);
    if (!r.feasible) {
      std::printf("%-16s INFEASIBLE (unexpected)\n", name);
      return 1;
    }
    std::printf("%-16s x = (%lld, %lld, %lld, %lld)  objective = %lld\n",
                name, static_cast<long long>(r.x[0]),
                static_cast<long long>(r.x[1]), static_cast<long long>(r.x[2]),
                static_cast<long long>(r.x[3]),
                static_cast<long long>(r.objective));
  }
  std::printf("paper Fig. 6 expects    x = (5, 0, 0, 6)\n");
  return 0;
}
