// Full contest flow on one generated suite: fill with the engine AND all
// three baselines, score everything with the contest evaluator, and write
// the engine's solution to GDSII — the complete Fig. 3 pipeline plus
// evaluation, as a downstream user would run it.
//
//   $ ./contest_flow [suite] [output.gds]
#include <cstdio>
#include <string>

#include "baselines/greedy_filler.hpp"
#include "baselines/monte_carlo_filler.hpp"
#include "baselines/tile_lp_filler.hpp"
#include "common/memory_usage.hpp"
#include "common/timer.hpp"
#include "contest/benchmark_generator.hpp"
#include "contest/evaluator.hpp"
#include "contest/report.hpp"
#include "fill/fill_engine.hpp"
#include "gds/gds_writer.hpp"

using namespace ofl;

int main(int argc, char** argv) {
  const std::string suite = argc > 1 ? argv[1] : "s";
  const std::string outPath = argc > 2 ? argv[2] : "contest_" + suite + ".gds";

  const contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec(suite);
  const layout::Layout original = contest::BenchmarkGenerator::generate(spec);
  const contest::Evaluator evaluator(spec.windowSize,
                                     contest::scoreTableFor(spec.name),
                                     spec.rules);
  std::vector<contest::ResultRow> rows;

  auto evaluate = [&](const std::string& team, layout::Layout& chip,
                      double seconds) {
    contest::ResultRow row;
    row.design = spec.name;
    row.team = team;
    row.runtimeSeconds = seconds;
    row.memoryMiB = peakMemoryMiB();
    row.raw = evaluator.measure(chip);
    row.scores = evaluator.score(row.raw, seconds, row.memoryMiB);
    rows.push_back(row);
  };

  {
    baselines::TileLpFiller::Options o;
    o.windowSize = spec.windowSize;
    o.rules = spec.rules;
    baselines::TileLpFiller filler(o);
    layout::Layout chip = original;
    Timer t;
    filler.fill(chip);
    evaluate(filler.name(), chip, t.elapsedSeconds());
  }
  {
    baselines::MonteCarloFiller::Options o;
    o.windowSize = spec.windowSize;
    o.rules = spec.rules;
    baselines::MonteCarloFiller filler(o);
    layout::Layout chip = original;
    Timer t;
    filler.fill(chip);
    evaluate(filler.name(), chip, t.elapsedSeconds());
  }
  {
    baselines::GreedyFiller::Options o;
    o.windowSize = spec.windowSize;
    o.rules = spec.rules;
    baselines::GreedyFiller filler(o);
    layout::Layout chip = original;
    Timer t;
    filler.fill(chip);
    evaluate(filler.name(), chip, t.elapsedSeconds());
  }
  {
    fill::FillEngineOptions o;
    o.windowSize = spec.windowSize;
    o.rules = spec.rules;
    layout::Layout chip = original;
    Timer t;
    fill::FillEngine(o).run(chip);
    evaluate("ours", chip, t.elapsedSeconds());
    const long long bytes = gds::Writer::writeFile(chip.toGds(), outPath);
    std::printf("wrote %s (%lld bytes)\n", outPath.c_str(), bytes);
  }

  contest::printTable3(rows);
  return 0;
}
