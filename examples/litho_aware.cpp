// Lithography-aware fill (the paper's future-work direction): when the
// fill spacing rule lands inside a forbidden-pitch band, plain fill
// insertion creates thousands of litho-hostile gaps; enabling
// CandidateGenerator::Options::lithoAvoid removes them.
//
//   $ ./litho_aware [suite]
#include <cstdio>
#include <string>

#include "common/logging.hpp"
#include "contest/benchmark_generator.hpp"
#include "fill/fill_engine.hpp"
#include "layout/litho.hpp"

using namespace ofl;

int main(int argc, char** argv) {
  setLogLevel(LogLevel::kWarn);
  const std::string suite = argc > 1 ? argv[1] : "tiny";
  contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec(suite);
  // Put the spacing rule inside the forbidden band on purpose.
  spec.rules.minSpacing = 14;
  const layout::LithoRules band{12, 18};

  for (const bool aware : {false, true}) {
    layout::Layout chip = contest::BenchmarkGenerator::generate(spec);
    fill::FillEngineOptions options;
    options.windowSize = spec.windowSize;
    options.rules = spec.rules;
    if (aware) options.candidate.lithoAvoid = band;
    const fill::FillReport report = fill::FillEngine(options).run(chip);
    const std::size_t hotspots = layout::LithoChecker(band).count(chip);
    std::printf("%-22s fills=%7zu  forbidden-pitch hotspots=%zu\n",
                aware ? "litho-aware gutters:" : "plain gutters:",
                report.fillCount, hotspots);
  }
  std::printf("forbidden band: gaps in [%lld, %lld) DBU\n",
              static_cast<long long>(band.forbiddenLo),
              static_cast<long long>(band.forbiddenHi));
  return 0;
}
