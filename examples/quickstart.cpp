// Quickstart: build a tiny two-layer layout by hand, run the fill engine,
// and inspect densities, overlay and the output GDS.
//
//   $ ./quickstart
//
// This is the 60-second tour of the public API: Layout -> FillEngine ->
// Evaluator -> gds::Writer.
#include <cstdio>

#include "contest/evaluator.hpp"
#include "fill/fill_engine.hpp"
#include "gds/gds_writer.hpp"

using namespace ofl;

int main() {
  // A 4x4-window die with two metal layers.
  const geom::Rect die{0, 0, 4800, 4800};
  layout::Layout chip(die, /*numLayers=*/2);

  // Hand-placed wires: a dense block lower-left on metal1, a few vertical
  // straps on metal2. The empty upper-right corner is what fill fixes.
  for (geom::Coord y = 100; y < 2200; y += 120) {
    chip.layer(0).wires.push_back({100, y, 2100, y + 60});
  }
  for (geom::Coord x = 200; x < 2400; x += 300) {
    chip.layer(1).wires.push_back({x, 100, x + 80, 2300});
  }

  fill::FillEngineOptions options;
  options.windowSize = 1200;
  options.rules.minWidth = 10;
  options.rules.minSpacing = 10;
  options.rules.minArea = 200;
  options.rules.maxFillSize = 300;

  const fill::FillEngine engine(options);
  const fill::FillReport report = engine.run(chip);
  std::printf("inserted %zu fills (%zu candidates) in %.3fs\n",
              report.fillCount, report.candidateCount, report.totalSeconds);

  // Score it with the contest metric (suite "s" coefficient table).
  const contest::Evaluator evaluator(options.windowSize,
                                     contest::scoreTableFor("s"),
                                     options.rules);
  const contest::RawMetrics raw = evaluator.measure(chip);
  std::printf("variation=%.4f line=%.3f outlier=%.4f overlay=%.0f DBU^2\n",
              raw.variation, raw.line, raw.outlier, raw.overlay);
  std::printf("DRC violations: %zu\n", raw.drcViolations);

  const long long bytes =
      gds::Writer::writeFile(chip.toGds(), "quickstart_filled.gds");
  std::printf("wrote quickstart_filled.gds (%lld bytes)\n", bytes);
  return 0;
}
