// Density analysis walkthrough: generate the "s" suite, print its window
// density map per layer with an ASCII heat ramp, and report the density
// metrics before and after filling.
//
//   $ ./density_analysis [suite]
#include <cstdio>
#include <string>

#include "contest/benchmark_generator.hpp"
#include "density/density_map.hpp"
#include "density/metrics.hpp"
#include "fill/fill_engine.hpp"

using namespace ofl;

namespace {

void printHeatmap(const density::DensityMap& map) {
  static const char* ramp = " .:-=+*#%@";
  for (int j = map.rows() - 1; j >= 0; --j) {
    for (int i = 0; i < map.cols(); ++i) {
      const double v = std::min(std::max(map.at(i, j), 0.0), 0.999);
      std::putchar(ramp[static_cast<int>(v * 10)]);
    }
    std::putchar('\n');
  }
}

void report(const layout::Layout& chip, const layout::WindowGrid& grid,
            const char* label) {
  std::printf("---- %s ----\n", label);
  for (int l = 0; l < chip.numLayers(); ++l) {
    const auto map = density::DensityMap::compute(chip, l, grid);
    const auto m = density::computeMetrics(map);
    std::printf("layer %d: mean=%.3f sigma=%.4f line=%.3f outlier=%.4f\n",
                l + 1, m.mean, m.sigma, m.lineHotspot, m.outlierHotspot);
    if (l == 0) printHeatmap(map);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string suite = argc > 1 ? argv[1] : "s";
  const contest::BenchmarkSpec spec = contest::BenchmarkGenerator::spec(suite);
  layout::Layout chip = contest::BenchmarkGenerator::generate(spec);
  const layout::WindowGrid grid(chip.die(), spec.windowSize);

  std::printf("suite %s: %zu wires, %d layers, %dx%d windows\n",
              spec.name.c_str(), chip.wireCount(), chip.numLayers(),
              grid.cols(), grid.rows());
  report(chip, grid, "before fill");

  fill::FillEngineOptions options;
  options.windowSize = spec.windowSize;
  options.rules = spec.rules;
  fill::FillEngine(options).run(chip);

  report(chip, grid, "after fill");
  return 0;
}
